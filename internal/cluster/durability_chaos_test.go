package cluster

import (
	"fmt"
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/expr"
	"joinview/internal/fault"
	"joinview/internal/node"
	"joinview/internal/types"
)

// newDurableChaosCluster is newChaosCluster with the write-ahead-log
// durability layer on: every DML statement runs under presumed-abort 2PC,
// crashes wipe volatile state, and recovery replays checkpoint + log tail.
func newDurableChaosCluster(t *testing.T, inj *fault.Injector, strat catalog.Strategy, nCust, ordersPer, ckptEvery int) *Cluster {
	t.Helper()
	c, err := New(Config{Nodes: 4, Faults: inj, RetryAttempts: 4, Durability: true, CheckpointEvery: ckptEvery})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for _, tab := range []*catalog.Table{customerTable(), ordersTable(), lineitemTable()} {
		if err := c.CreateTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	var customers, orders []types.Tuple
	ok := int64(0)
	for ck := int64(0); ck < int64(nCust); ck++ {
		customers = append(customers, cust(ck, float64(ck)*1.5))
		for o := 0; o < ordersPer; o++ {
			ok++
			orders = append(orders, ord(ok, ck, float64(ok)*10))
		}
	}
	if err := c.Insert("customer", customers); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("orders", orders); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"customer", "orders", "lineitem"} {
		if err := c.RefreshStats(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateView(jv1Def("jv1", strat)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	return c
}

// assertNoInDoubt verifies every node settled all its transactions: the
// in-doubt set is empty cluster-wide.
func assertNoInDoubt(t *testing.T, c *Cluster) {
	t.Helper()
	for n := 0; n < c.cfg.Nodes; n++ {
		resp, err := c.rawDeliver(n, node.InDoubtReq{})
		if err != nil {
			t.Fatalf("InDoubtReq at node %d: %v", n, err)
		}
		if tids := resp.(node.InDoubtResult).TIDs; len(tids) != 0 {
			t.Fatalf("node %d still has in-doubt transactions %v", n, tids)
		}
	}
}

// recoverAllDurable ends a durable fault episode: stop injecting, defuse
// scheduled crashes, then for every node that went down, wipe its volatile
// state (the fail-stop the fault layer only simulated at the transport)
// and recover it from its own log.
func recoverAllDurable(t *testing.T, c *Cluster, inj *fault.Injector) {
	t.Helper()
	inj.Disarm()
	inj.CrashAfter(0, -1)
	down := map[int]bool{}
	for _, n := range inj.DownNodes() {
		down[n] = true
	}
	for _, n := range c.Degraded() {
		down[n] = true
	}
	for n := range down {
		if err := c.CrashNode(n); err != nil {
			t.Fatalf("crash node %d: %v", n, err)
		}
		rep, err := c.RecoverWithReport(n)
		if err != nil {
			t.Fatalf("recover node %d: %v", n, err)
		}
		if rep.Mode != "replay" {
			t.Fatalf("recover node %d used mode %q, want replay", n, rep.Mode)
		}
	}
	if d := c.Degraded(); len(d) != 0 {
		t.Fatalf("still degraded after recovery: %v", d)
	}
}

// TestDurableCrashMidTransactionReplay is the core durability scenario,
// run under each maintenance strategy: a node fail-stops in the middle of
// a multi-node insert transaction (losing all volatile state), the
// statement aborts, and recovery brings the node back from its checkpoint
// and log tail — resolving the interrupted transaction by presumed abort —
// after which the base table is untouched, the view equals a fresh
// recompute, and no transaction is left in doubt anywhere.
func TestDurableCrashMidTransactionReplay(t *testing.T) {
	for _, strat := range allStrategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			inj := fault.New(fault.Config{Seed: 41})
			c := newDurableChaosCluster(t, inj, strat, 6, 2, 0)
			full, err := c.TableRows("orders")
			if err != nil {
				t.Fatal(err)
			}

			// The batch spans every node; the transport fences node 1 a few
			// calls in, after some of the statement's work — including its
			// redo records — has landed there.
			inj.CrashAfter(1, 2)
			batch := []types.Tuple{ord(900, 0, 1), ord(901, 1, 2), ord(902, 2, 3), ord(903, 3, 4), ord(904, 4, 5), ord(905, 5, 6)}
			if err := c.Insert("orders", batch); err == nil {
				t.Fatal("insert crossing a mid-statement crash should fail")
			}
			// Complete the fail-stop: wipe the node's volatile state so only
			// its write-ahead log and checkpoint survive.
			inj.CrashAfter(0, -1)
			if err := c.CrashNode(1); err != nil {
				t.Fatal(err)
			}

			rep, err := c.RecoverWithReport(1)
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if rep.Mode != "replay" {
				t.Fatalf("recovery mode %q, want replay", rep.Mode)
			}
			if rep.CheckpointPages == 0 {
				t.Fatalf("recovery ignored the checkpoint: %+v", rep)
			}
			if rep.InDoubtResolved != rep.Committed+rep.Aborted {
				t.Fatalf("in-doubt accounting inconsistent: %+v", rep)
			}
			t.Logf("recovery: %+v", rep)

			got, err := c.TableRows("orders")
			if err != nil {
				t.Fatal(err)
			}
			assertBagEqual(t, "orders after replay recovery", got, full)
			if err := c.CheckViewConsistency("jv1"); err != nil {
				t.Fatalf("view inconsistent after replay recovery: %v", err)
			}
			if err := c.CheckAllStructures(); err != nil {
				t.Fatal(err)
			}
			assertNoInDoubt(t, c)

			// Full service: the same batch commits cleanly now.
			if err := c.Insert("orders", batch); err != nil {
				t.Fatal(err)
			}
			if err := c.CheckViewConsistency("jv1"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDurableCommittedWorkSurvivesCrash commits transactions, then
// fail-stops a node with no warning: everything committed must come back
// from checkpoint + log replay, including work logged after the last
// checkpoint.
func TestDurableCommittedWorkSurvivesCrash(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 43})
	c := newDurableChaosCluster(t, inj, catalog.StrategyAuxRel, 6, 2, 0)
	// Post-checkpoint commits: these exist only in the log tail.
	if err := c.Insert("orders", []types.Tuple{ord(910, 0, 1), ord(911, 3, 2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete("orders",
		expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "orderkey"}, R: expr.Const{V: types.Int(1)}}); err != nil {
		t.Fatal(err)
	}
	full, err := c.TableRows("orders")
	if err != nil {
		t.Fatal(err)
	}

	for n := 0; n < 4; n++ {
		if err := c.CrashNode(n); err != nil {
			t.Fatal(err)
		}
		if err := c.Recover(n); err != nil {
			t.Fatalf("recover node %d: %v", n, err)
		}
	}
	got, err := c.TableRows("orders")
	if err != nil {
		t.Fatal(err)
	}
	assertBagEqual(t, "orders after full-cluster crash", got, full)
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckAllStructures(); err != nil {
		t.Fatal(err)
	}
	assertNoInDoubt(t, c)
}

// TestDurableKillRestartStorm drives a seeded statement stream punctuated
// by fail-stop crashes (volatile state wiped every time) and recoveries,
// under each strategy. Frequent automatic checkpoints exercise log
// truncation concurrently with pending transactions. After the storm the
// base table must hold exactly the committed statements' rows and every
// derived structure must match a recompute.
func TestDurableKillRestartStorm(t *testing.T) {
	for _, strat := range allStrategies {
		for _, seed := range []int64{1, 2} {
			strat, seed := strat, seed
			t.Run(fmt.Sprintf("%s/seed=%d", strat, seed), func(t *testing.T) {
				runDurableStorm(t, strat, seed)
			})
		}
	}
}

func runDurableStorm(t *testing.T, strat catalog.Strategy, seed int64) {
	inj := fault.New(fault.Config{
		Seed:        seed,
		DropRequest: 0.03,
		DropReply:   0.03,
		Duplicate:   0.03,
		HandlerErr:  0.03,
	})
	const nCust, ordersPer = 6, 2
	c := newDurableChaosCluster(t, inj, strat, nCust, ordersPer, 16)

	mirror := map[int64]types.Tuple{}
	var okeys []int64
	for ck := int64(0); ck < nCust; ck++ {
		for o := 0; o < ordersPer; o++ {
			k := ck*ordersPer + int64(o) + 1
			mirror[k] = ord(k, ck, float64(k)*10)
			okeys = append(okeys, k)
		}
	}

	r := newRand(seed)
	nextOK := int64(1000)
	inj.Arm()
	committed, failed, crashes := 0, 0, 0
	for i := 0; i < 40; i++ {
		if len(c.Degraded()) > 0 || len(inj.DownNodes()) > 0 {
			if r.Float64() < 0.6 {
				recoverAllDurable(t, c, inj)
				inj.Arm()
			}
		} else if r.Float64() < 0.12 {
			// Fail-stop between statements: fence and wipe immediately.
			inj.Disarm()
			if err := c.CrashNode(r.Intn(4)); err != nil {
				t.Fatal(err)
			}
			inj.Arm()
			crashes++
		} else if r.Float64() < 0.08 {
			// Fail-stop landing mid-statement: the transport fences the
			// node partway through a future statement; the wipe happens in
			// recoverAllDurable.
			inj.CrashAfter(r.Intn(4), 1+r.Intn(6))
			crashes++
		}

		var err error
		var applied func()
		switch draw := r.Float64(); {
		case draw < 0.5: // insert new orders
			n := 1 + r.Intn(3)
			batch := make([]types.Tuple, n)
			keys := make([]int64, n)
			for j := 0; j < n; j++ {
				nextOK++
				keys[j] = nextOK
				batch[j] = ord(nextOK, int64(r.Intn(nCust)), float64(nextOK))
			}
			err = c.Insert("orders", batch)
			applied = func() {
				for j, k := range keys {
					mirror[k] = batch[j]
					okeys = append(okeys, k)
				}
			}
		case draw < 0.75 && len(okeys) > 0: // delete one order
			idx := r.Intn(len(okeys))
			k := okeys[idx]
			_, err = c.Delete("orders",
				expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "orderkey"}, R: expr.Const{V: types.Int(k)}})
			applied = func() {
				delete(mirror, k)
				okeys[idx] = okeys[len(okeys)-1]
				okeys = okeys[:len(okeys)-1]
			}
		default: // reprice one order
			if len(okeys) == 0 {
				continue
			}
			k := okeys[r.Intn(len(okeys))]
			price := types.Float(float64(r.Intn(10000)))
			_, err = c.Update("orders",
				map[string]types.Value{"totalprice": price},
				expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "orderkey"}, R: expr.Const{V: types.Int(k)}})
			applied = func() {
				nt := mirror[k].Clone()
				nt[2] = price
				mirror[k] = nt
			}
		}
		if err == nil {
			committed++
			applied()
		} else {
			failed++
		}
	}

	recoverAllDurable(t, c, inj)
	if crashes == 0 {
		t.Skipf("seed %d produced no crashes; storm not meaningful", seed)
	}
	t.Logf("durable storm: %d committed, %d failed, %d crashes, faults=%+v",
		committed, failed, crashes, inj.Stats())

	got, err := c.TableRows("orders")
	if err != nil {
		t.Fatalf("TableRows(orders) after storm: %v", err)
	}
	want := make([]types.Tuple, 0, len(mirror))
	for _, tu := range mirror {
		want = append(want, tu)
	}
	assertBagEqual(t, "orders after durable storm", got, want)
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatalf("view inconsistent after durable storm: %v", err)
	}
	if err := c.CheckAllStructures(); err != nil {
		t.Fatalf("structures inconsistent after durable storm: %v", err)
	}
	assertNoInDoubt(t, c)
}

// TestCoordinatorDecisionLoss drives the presumed-abort decision table
// directly: a participant prepares a transaction and crashes before the
// decision reaches it. If the coordinator logged COMMIT before the crash,
// recovery must re-deliver the commit and keep the work; if it logged
// nothing, recovery must presume abort and undo it.
func TestCoordinatorDecisionLoss(t *testing.T) {
	for _, commit := range []bool{true, false} {
		commit := commit
		name := "presumed-abort"
		if commit {
			name = "commit-decision"
		}
		t.Run(name, func(t *testing.T) {
			inj := fault.New(fault.Config{Seed: 47})
			c := newDurableChaosCluster(t, inj, catalog.StrategyAuxRel, 4, 2, 0)

			// lineitem has no views or auxiliary structures in this cluster,
			// so driving its fragment directly keeps everything consistent.
			row := li(42, 7, 3.5)
			target := c.part.NodeFor(row[0])
			tid := c.tids.Add(1)
			if _, err := c.rawDeliver(target, node.Seq{ID: c.seq.Add(1), TID: tid,
				Req: node.Insert{Frag: "lineitem", Tuples: []types.Tuple{row}}}); err != nil {
				t.Fatal(err)
			}
			if _, err := c.rawDeliver(target, node.Prepare{TID: tid}); err != nil {
				t.Fatal(err)
			}
			if commit {
				// The commit point: the decision reached the coordinator's
				// log, but the participant crashes before hearing it.
				c.logDecision(tid)
			}
			if err := c.CrashNode(target); err != nil {
				t.Fatal(err)
			}

			rep, err := c.RecoverWithReport(target)
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if rep.InDoubtResolved != 1 {
				t.Fatalf("InDoubtResolved = %d, want 1 (%+v)", rep.InDoubtResolved, rep)
			}
			rows, err := c.TableRows("lineitem")
			if err != nil {
				t.Fatal(err)
			}
			if commit {
				if rep.Committed != 1 || rep.Aborted != 0 {
					t.Fatalf("decision resolution = %+v, want 1 committed", rep)
				}
				assertBagEqual(t, "lineitem after commit-side recovery", rows, []types.Tuple{row})
			} else {
				if rep.Aborted != 1 || rep.Committed != 0 {
					t.Fatalf("decision resolution = %+v, want 1 aborted", rep)
				}
				if len(rows) != 0 {
					t.Fatalf("presumed abort left rows: %v", rows)
				}
			}
			assertNoInDoubt(t, c)

			// A second crash/recovery settles instantly: the decision is no
			// longer in doubt.
			if err := c.CrashNode(target); err != nil {
				t.Fatal(err)
			}
			rep, err = c.RecoverWithReport(target)
			if err != nil {
				t.Fatal(err)
			}
			if rep.InDoubtResolved != 0 {
				t.Fatalf("second recovery re-resolved: %+v", rep)
			}
			got, err := c.TableRows("lineitem")
			if err != nil {
				t.Fatal(err)
			}
			assertBagEqual(t, "lineitem after second recovery", got, rows)
		})
	}
}

// TestReentrantDurableRecovery crashes a node again in the middle of
// recovery — after the log replay restored its state but before the
// coordinator resolved its in-doubt transaction — and checks that a second
// recovery still converges to the same end state.
func TestReentrantDurableRecovery(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 53})
	c := newDurableChaosCluster(t, inj, catalog.StrategyGlobalIndex, 6, 2, 0)
	full, err := c.TableRows("orders")
	if err != nil {
		t.Fatal(err)
	}

	// Leave an in-doubt transaction at node 2 via a mid-statement crash.
	inj.CrashAfter(2, 2)
	batch := []types.Tuple{ord(920, 0, 1), ord(921, 1, 2), ord(922, 2, 3), ord(923, 3, 4), ord(924, 4, 5), ord(925, 5, 6)}
	if err := c.Insert("orders", batch); err == nil {
		t.Fatal("insert crossing the crash should fail")
	}
	inj.CrashAfter(0, -1)
	inj.Restart(2)

	// Plant a second, guaranteed-prepared transaction at node 2 (driving a
	// lineitem fragment that belongs to no view) so the re-entrant passes
	// definitely carry an unresolved in-doubt decision across both crashes.
	var row types.Tuple
	for k := int64(1); ; k++ {
		if row = li(k, 1, 2.5); c.part.NodeFor(row[0]) == 2 {
			break
		}
	}
	tid := c.tids.Add(1)
	if _, err := c.rawDeliver(2, node.Seq{ID: c.seq.Add(1), TID: tid,
		Req: node.Insert{Frag: "lineitem", Tuples: []types.Tuple{row}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.rawDeliver(2, node.Prepare{TID: tid}); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashNode(2); err != nil {
		t.Fatal(err)
	}

	// First recovery attempt: the node restarts and replays its log, then
	// fail-stops again before in-doubt resolution.
	if _, err := c.RestartNode(2); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if err := c.CrashNode(2); err != nil {
		t.Fatal(err)
	}

	// Second, completed recovery converges.
	rep, err := c.RecoverWithReport(2)
	if err != nil {
		t.Fatalf("re-entrant recover: %v", err)
	}
	t.Logf("re-entrant recovery: %+v", rep)
	if rep.Mode != "replay" {
		t.Fatalf("re-entrant recovery used mode %q, want replay", rep.Mode)
	}
	if rep.Aborted == 0 {
		t.Fatalf("planted in-doubt transaction not presumed aborted: %+v", rep)
	}
	got, err := c.TableRows("orders")
	if err != nil {
		t.Fatal(err)
	}
	assertBagEqual(t, "orders after re-entrant recovery", got, full)
	if rows, err := c.TableRows("lineitem"); err != nil {
		t.Fatal(err)
	} else if len(rows) != 0 {
		t.Fatalf("presumed-aborted lineitem insert survived re-entrant recovery: %v", rows)
	}
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckAllStructures(); err != nil {
		t.Fatal(err)
	}
	assertNoInDoubt(t, c)
}
