package cluster

import (
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/expr"
	"joinview/internal/types"
)

// triangleCluster builds the paper's §2.2 complete-join example: three
// relations A, B, C where each is joined to the other two (A.x=B.x,
// B.y=C.y, C.z=A.z) — a cyclic join graph. The maintenance plan can only
// chain two of the three predicates; the third must filter the result.
func triangleCluster(t *testing.T, strat catalog.Strategy) *Cluster {
	t.Helper()
	c, err := New(Config{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	mk := func(name string, cols ...string) *catalog.Table {
		var cc []types.Column
		for _, col := range cols {
			cc = append(cc, types.Column{Name: col, Kind: types.KindInt})
		}
		return &catalog.Table{Name: name, Schema: types.NewSchema(cc...), PartitionCol: "pk"}
	}
	for _, tab := range []*catalog.Table{
		mk("ta", "pk", "x", "z"),
		mk("tb", "pk", "x", "y"),
		mk("tc", "pk", "y", "z"),
	} {
		if err := c.CreateTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	row := func(pk, a, b int64) types.Tuple {
		return types.Tuple{types.Int(pk), types.Int(a), types.Int(b)}
	}
	// Construct data where the 2-predicate chain over-produces: several
	// (x, y) paths exist whose z does NOT close the triangle.
	noErr(t, c.Insert("ta", []types.Tuple{row(1, 10, 100), row(2, 10, 200), row(3, 20, 100)}))
	noErr(t, c.Insert("tb", []types.Tuple{row(1, 10, 50), row(2, 10, 60), row(3, 20, 50)}))
	noErr(t, c.Insert("tc", []types.Tuple{row(1, 50, 100), row(2, 50, 200), row(3, 60, 300)}))
	v := &catalog.View{
		Name:   "tri",
		Tables: []string{"ta", "tb", "tc"},
		Joins: []catalog.JoinPred{
			{Left: "ta", LeftCol: "x", Right: "tb", RightCol: "x"},
			{Left: "tb", LeftCol: "y", Right: "tc", RightCol: "y"},
			{Left: "tc", LeftCol: "z", Right: "ta", RightCol: "z"}, // closes the cycle
		},
		Out: []catalog.OutCol{
			{Table: "ta", Col: "pk"}, {Table: "tb", Col: "pk"}, {Table: "tc", Col: "pk"},
		},
		PartitionTable: "ta", PartitionCol: "pk",
		Strategy: strat,
	}
	if err := c.CreateView(v); err != nil {
		t.Fatal(err)
	}
	return c
}

// refTriangle computes the triangle join by brute force.
func refTriangle(t *testing.T, c *Cluster) []types.Tuple {
	t.Helper()
	ta, _ := c.TableRows("ta")
	tb, _ := c.TableRows("tb")
	tc2, _ := c.TableRows("tc")
	var out []types.Tuple
	for _, a := range ta {
		for _, b := range tb {
			if !types.Equal(a[1], b[1]) { // x
				continue
			}
			for _, cc := range tc2 {
				if types.Equal(b[2], cc[1]) && types.Equal(cc[2], a[2]) { // y, z
					out = append(out, types.Tuple{a[0], b[0], cc[0]})
				}
			}
		}
	}
	return out
}

func TestCyclicViewInitialMaterialization(t *testing.T) {
	c := triangleCluster(t, catalog.StrategyNaive)
	got, err := c.ViewRows("tri")
	if err != nil {
		t.Fatal(err)
	}
	want := refTriangle(t, c)
	if err := bagEqual(got, want); err != nil {
		t.Fatalf("initial triangle content: %v (got %d, want %d)", err, len(got), len(want))
	}
	if len(want) == 0 {
		t.Fatal("test data should produce at least one closed triangle")
	}
	// And there must exist an open path (x,y match, z doesn't) that the
	// residual predicate filtered — otherwise the test proves nothing.
	open := 0
	ta, _ := c.TableRows("ta")
	tb, _ := c.TableRows("tb")
	tc2, _ := c.TableRows("tc")
	for _, a := range ta {
		for _, b := range tb {
			if !types.Equal(a[1], b[1]) {
				continue
			}
			for _, cc := range tc2 {
				if types.Equal(b[2], cc[1]) && !types.Equal(cc[2], a[2]) {
					open++
				}
			}
		}
	}
	if open == 0 {
		t.Fatal("data has no open paths: residual filtering untested")
	}
}

func TestCyclicViewMaintenanceAllStrategies(t *testing.T) {
	for _, strat := range allStrategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			c := triangleCluster(t, strat)
			// Updates on every relation, including tuples that extend
			// open paths only (must not reach the view).
			noErr(t, c.Insert("ta", []types.Tuple{
				{types.Int(10), types.Int(10), types.Int(300)}, // closes with tb(2)/tc(3)
				{types.Int(11), types.Int(10), types.Int(999)}, // open path only
			}))
			noErr(t, c.Insert("tb", []types.Tuple{
				{types.Int(10), types.Int(20), types.Int(50)},
			}))
			noErr(t, c.Insert("tc", []types.Tuple{
				{types.Int(10), types.Int(60), types.Int(100)},
			}))
			if _, err := c.Delete("tb", expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "pk"}, R: expr.Const{V: types.Int(1)}}); err != nil {
				t.Fatal(err)
			}
			got, err := c.ViewRows("tri")
			if err != nil {
				t.Fatal(err)
			}
			want := refTriangle(t, c)
			if err := bagEqual(got, want); err != nil {
				t.Fatalf("triangle after updates: %v (got %d, want %d)", err, len(got), len(want))
			}
			if err := c.CheckViewConsistency("tri"); err != nil {
				t.Fatal(err)
			}
		})
	}
}
