package cluster

import (
	"joinview/internal/lockmgr"
	"joinview/internal/netsim"
)

// This file decides what each coordinator entry point locks. The claim
// model is by base table:
//
//	resource            writers (X)                     readers (S)
//	-----------------   -----------------------------   -------------------
//	base table T        DML statements on T (the        DML on other tables
//	                    statement also writes AR_T      whose view probes
//	                    and GI_T, which only T-         T, AR_T or GI_T;
//	                    statements touch)               queries over T
//	view V              DML on any base table of V      queries over V
//	global (manager)    DDL, Recover, Checkpoint,       every statement
//	                    CrashNode, serial modes         above
//
// Statements acquire the global lock shared, then their table/view claims
// in sorted order (lockmgr's protocol), so two statements conflict exactly
// when they touch an overlapping table or view. Everything that mutates
// the catalog or the cluster topology takes the global lock exclusively
// and needs no claims.

// parallelDispatch reports whether per-node fan-outs inside one statement
// may run concurrently: only on the channel transport (Direct handlers
// execute on the caller's goroutine and the experiments depend on its
// deterministic traces), and not when SerialDML pins the seed's serial
// execution model. Durability forces serial dispatch — the write-ahead
// sequence numbers and two-phase-commit state (current TID, participant
// set, decision log) are one coordinator-wide scope — and so does fault
// injection, whose deterministic chaos schedules assume one delivery at a
// time.
func (c *Cluster) parallelDispatch() bool {
	return (c.cfg.UseChannels || c.cfg.UseTCP) && !c.cfg.SerialDML &&
		!c.cfg.Durability && c.cfg.Faults == nil
}

// serialStmts reports whether DML statements must serialize cluster-wide
// (the seed's one-big-lock execution model).
func (c *Cluster) serialStmts() bool {
	return !c.parallelDispatch()
}

// scatter dispatches per-node calls through the cluster's transport under
// its dispatch policy, gathering responses in input order.
func (c *Cluster) scatter(calls []netsim.Call) ([]any, error) {
	return netsim.ScatterCalls(c.tr, c.parallelDispatch(), c.cfg.ScatterWorkers, calls)
}

// stmtClaims computes the lock set of one DML statement on table: the
// table and every view over it exclusively, the views' other base tables
// shared (the statement reads their fragments, auxiliary relations or
// global indexes while computing the view delta). Must be called with the
// global shared lock held — it reads the catalog, which DDL mutates under
// the global exclusive lock.
func (c *Cluster) stmtClaims(table string) []lockmgr.Claim {
	claims := []lockmgr.Claim{lockmgr.X(table)}
	for _, v := range c.cat.ViewsOn(table) {
		claims = append(claims, lockmgr.X(v.Name))
		for _, t2 := range v.Tables {
			if t2 != table {
				claims = append(claims, lockmgr.S(t2))
			}
		}
	}
	return claims
}

// lockStmt acquires the locks for one DML statement on table. In any
// serial mode this is the global exclusive lock (the seed's one-big-lock
// behavior); otherwise the statement's table-level claims plus a shared
// claim on every hash range currently being migrated, so the migration
// cutover (which takes those ranges exclusively) cannot slide under a
// statement that is mid-flight against the moving data.
func (c *Cluster) lockStmt(table string) *lockmgr.Held {
	if c.serialStmts() {
		return c.lm.AcquireGlobal()
	}
	h := c.lm.AcquireShared()
	h.Lock(append(c.stmtClaims(table), c.migRangeClaims(lockmgr.S)...)...)
	return h
}

// lockRead acquires shared claims on the named relations or views for a
// consistent read alongside concurrent writers.
func (c *Cluster) lockRead(names ...string) *lockmgr.Held {
	if c.serialStmts() {
		return c.lm.AcquireGlobal()
	}
	h := c.lm.AcquireShared()
	claims := make([]lockmgr.Claim, len(names))
	for i, n := range names {
		claims[i] = lockmgr.S(n)
	}
	h.Lock(claims...)
	return h
}

// lockGlobal acquires the global exclusive lock: the caller is the only
// operation running until Release (DDL, recovery, checkpoints, session
// rollback across tables).
func (c *Cluster) lockGlobal() *lockmgr.Held {
	return c.lm.AcquireGlobal()
}
