package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"joinview/internal/catalog"
	"joinview/internal/expr"
	"joinview/internal/types"
)

// newAsyncCluster builds a loaded cluster with deferred maintenance on.
// The loader flushes after loading, so the view's initial materialization
// sees the full base tables; cfg tweaks (epoch size, bounds, transport)
// come in through mod.
func newAsyncCluster(t *testing.T, strat catalog.Strategy, mod func(*Config)) *Cluster {
	t.Helper()
	cfg := Config{Nodes: 4, AsyncMaintenance: true}
	if mod != nil {
		mod(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for _, tab := range []*catalog.Table{customerTable(), ordersTable(), lineitemTable()} {
		if err := c.CreateTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	var customers, orders []types.Tuple
	ok := int64(0)
	for ck := int64(0); ck < 8; ck++ {
		customers = append(customers, cust(ck, float64(ck)*1.5))
		for o := 0; o < 2; o++ {
			ok++
			orders = append(orders, ord(ok, ck, float64(ok)*10))
		}
	}
	if err := c.Insert("customer", customers); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("orders", orders); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"customer", "orders", "lineitem"} {
		if err := c.RefreshStats(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateView(jv1Def("jv1", strat)); err != nil {
		t.Fatal(err)
	}
	return c
}

func eqOrderKey(k int64) expr.Expr {
	return expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "orderkey"}, R: expr.Const{V: types.Int(k)}}
}

// TestAsyncDeferralAndFlush is the core contract: a deferred insert is
// invisible in stored state until the flush epoch applies it atomically —
// base, auxiliary structures and view move together, so the consistency
// check holds both before and after.
func TestAsyncDeferralAndFlush(t *testing.T) {
	c := newAsyncCluster(t, catalog.StrategyAuto, nil)
	before, err := c.ViewRows("jv1")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("orders", []types.Tuple{ord(900, 3, 1), ord(901, 4, 2)}); err != nil {
		t.Fatal(err)
	}
	if w := c.Watermark(); w.Pending != 1 {
		t.Fatalf("Pending = %d, want 1", w.Pending)
	}
	// Deferred: stored state — and therefore the view — is unchanged, and
	// still internally consistent at the watermark.
	stale, err := c.ViewRows("jv1")
	if err != nil {
		t.Fatal(err)
	}
	assertBagEqual(t, "view before flush", stale, before)
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatalf("consistency at watermark: %v", err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	w := c.Watermark()
	if w.Pending != 0 || w.Epoch == 0 {
		t.Fatalf("after flush: %+v", w)
	}
	fresh, err := c.ViewRows("jv1")
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != len(before)+2 {
		t.Fatalf("view rows = %d, want %d", len(fresh), len(before)+2)
	}
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncReadModes exercises the two staleness contracts: ReadAtWatermark
// returns immediately with the lag visible in the watermark, ReadFresh
// drains first.
func TestAsyncReadModes(t *testing.T) {
	c := newAsyncCluster(t, catalog.StrategyNaive, nil)
	base, err := c.ViewRows("jv1")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("orders", []types.Tuple{ord(910, 2, 5)}); err != nil {
		t.Fatal(err)
	}
	rows, w, err := c.ReadViewRows("jv1", ReadAtWatermark)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(base) {
		t.Fatalf("watermark read saw %d rows, want stale %d", len(rows), len(base))
	}
	if w.Pending != 1 {
		t.Fatalf("watermark read Pending = %d, want 1", w.Pending)
	}
	rows, w, err = c.ReadViewRows("jv1", ReadFresh)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(base)+1 {
		t.Fatalf("fresh read saw %d rows, want %d", len(rows), len(base)+1)
	}
	if w.Pending != 0 {
		t.Fatalf("fresh read Pending = %d, want 0", w.Pending)
	}
}

// TestAsyncOverlayVictims verifies deferred deletes and updates resolve
// their victims against the effective state — stored rows overlaid with
// the pending queue — not against stale storage.
func TestAsyncOverlayVictims(t *testing.T) {
	c := newAsyncCluster(t, catalog.StrategyAuto, nil)
	// Order 920 exists only in the queue; order 1 is stored.
	if err := c.Insert("orders", []types.Tuple{ord(920, 5, 7)}); err != nil {
		t.Fatal(err)
	}
	deleted, err := c.Delete("orders", eqOrderKey(920))
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 1 {
		t.Fatalf("delete of queued tuple found %d victims, want 1", len(deleted))
	}
	// A second delete of the same key sees it already consumed.
	deleted, err = c.Delete("orders", eqOrderKey(920))
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 0 {
		t.Fatalf("repeat delete found %d victims, want 0", len(deleted))
	}
	// A deferred delete of a stored row hides it from later statements.
	if _, err := c.Delete("orders", eqOrderKey(1)); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Update("orders", map[string]types.Value{"totalprice": types.Float(0)}, eqOrderKey(1)); err != nil || n != 0 {
		t.Fatalf("update of queue-deleted row matched %d (err %v), want 0", n, err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
	rows, err := c.TableRows("orders")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r[0].I == 1 || r[0].I == 920 {
			t.Fatalf("deleted order %d still stored", r[0].I)
		}
	}
}

// TestAsyncCompactionCancels checks the DBToaster effect: an insert and
// its delete inside one epoch cancel before any maintenance work runs,
// and the queue counters report the cancellation.
func TestAsyncCompactionCancels(t *testing.T) {
	c := newAsyncCluster(t, catalog.StrategyAuto, nil)
	c.ResetMetrics()
	if err := c.Insert("orders", []types.Tuple{ord(930, 6, 1), ord(931, 6, 2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete("orders", eqOrderKey(930)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete("orders", eqOrderKey(931)); err != nil {
		t.Fatal(err)
	}
	before := c.Metrics()
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.Queue.DeltasCancelled != 4 {
		t.Fatalf("DeltasCancelled = %d, want 4 (2 inserts + 2 deletes netted)", m.Queue.DeltasCancelled)
	}
	if m.Queue.EpochsFlushed != 1 {
		t.Fatalf("EpochsFlushed = %d, want 1", m.Queue.EpochsFlushed)
	}
	if ios := m.Sub(before).TotalIOs(); ios != 0 {
		t.Fatalf("fully-cancelled epoch cost %d node I/Os, want 0", ios)
	}
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncRepeatedKeyCollapse: several updates of one row inside an
// epoch collapse to a single net delete+insert pair at flush.
func TestAsyncRepeatedKeyCollapse(t *testing.T) {
	c := newAsyncCluster(t, catalog.StrategyAuto, nil)
	c.ResetMetrics()
	for i := 1; i <= 4; i++ {
		n, err := c.Update("orders", map[string]types.Value{"totalprice": types.Float(float64(i))}, eqOrderKey(2))
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("update %d matched %d rows, want 1", i, n)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	// 4 updates = 8 raw tuples; the net change is delete(old)+insert(last)
	// = 2 flushed, 6 cancelled.
	if m.Queue.TuplesFlushed != 2 || m.Queue.DeltasCancelled != 6 {
		t.Fatalf("flushed %d cancelled %d, want 2/6", m.Queue.TuplesFlushed, m.Queue.DeltasCancelled)
	}
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
	rows, err := c.TableRows("orders")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r[0].I == 2 && r[2].F != 4 {
			t.Fatalf("order 2 totalprice = %v, want 4 (last update)", r[2].F)
		}
	}
}

// TestAsyncOverloadShed: at MaxQueueDepth the next writer fails with
// ErrOverload and no effects; a flush clears the backlog and the retry
// succeeds.
func TestAsyncOverloadShed(t *testing.T) {
	c := newAsyncCluster(t, catalog.StrategyAuto, func(cfg *Config) { cfg.MaxQueueDepth = 3 })
	for i := int64(0); i < 3; i++ {
		if err := c.Insert("orders", []types.Tuple{ord(940+i, 1, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	err := c.Insert("orders", []types.Tuple{ord(950, 1, 1)})
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("insert at depth bound: %v, want ErrOverload", err)
	}
	if w := c.Watermark(); w.Pending != 3 {
		t.Fatalf("shed statement left effects: Pending = %d, want 3", w.Pending)
	}
	if m := c.Metrics(); m.Queue.Overloads == 0 {
		t.Fatal("overload not counted")
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("orders", []types.Tuple{ord(950, 1, 1)}); err != nil {
		t.Fatalf("retry after drain: %v", err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncOverloadBlockInlineDrain: with OverloadBlock and no background
// flusher, an overloaded writer drains the queue itself and proceeds —
// no manual intervention, no error.
func TestAsyncOverloadBlockInlineDrain(t *testing.T) {
	c := newAsyncCluster(t, catalog.StrategyAuto, func(cfg *Config) {
		cfg.MaxQueueDepth = 2
		cfg.OverloadBlock = true
	})
	for i := int64(0); i < 6; i++ {
		if err := c.Insert("orders", []types.Tuple{ord(960+i, 2, 1)}); err != nil {
			t.Fatalf("blocked writer %d: %v", i, err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
	rows, err := c.TableRows("orders")
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, r := range rows {
		if r[0].I >= 960 && r[0].I < 966 {
			found++
		}
	}
	if found != 6 {
		t.Fatalf("stored %d of 6 blocked-writer inserts", found)
	}
}

// TestAsyncBackgroundFlusher: a saturating writer against a small epoch
// size is drained by the background flusher without explicit Flush calls
// — the system recovers on its own.
func TestAsyncBackgroundFlusher(t *testing.T) {
	c := newAsyncCluster(t, catalog.StrategyAuto, func(cfg *Config) {
		cfg.EpochSize = 4
		cfg.MaxQueueDepth = 8
		cfg.OverloadBlock = true
	})
	for i := int64(0); i < 40; i++ {
		if err := c.Insert("orders", []types.Tuple{ord(1000+i, i%8, float64(i))}); err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if w := c.Watermark(); w.Pending == 0 && w.Epoch > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background flusher did not drain: %+v (flush err %v)", c.Watermark(), c.FlushErr())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
	if m := c.Metrics(); m.Queue.EpochsFlushed < 2 {
		t.Fatalf("EpochsFlushed = %d, want several", m.Queue.EpochsFlushed)
	}
}

// TestAsyncFlushIntervalTimer: the wall-clock trigger drains the queue
// with no depth trigger configured.
func TestAsyncFlushIntervalTimer(t *testing.T) {
	c := newAsyncCluster(t, catalog.StrategyNaive, func(cfg *Config) {
		cfg.FlushInterval = 10 * time.Millisecond
	})
	if err := c.Insert("orders", []types.Tuple{ord(970, 3, 1)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Watermark().Pending > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("timer flusher did not drain: %+v (flush err %v)", c.Watermark(), c.FlushErr())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncTxnDrainsQueue: a multi-statement transaction flushes pending
// deferred work first and runs synchronously, so its rollback hooks
// compensate against applied state.
func TestAsyncTxnDrainsQueue(t *testing.T) {
	c := newAsyncCluster(t, catalog.StrategyAuto, nil)
	if err := c.Insert("orders", []types.Tuple{ord(980, 4, 1)}); err != nil {
		t.Fatal(err)
	}
	tx := c.Begin()
	if err := tx.Insert("orders", []types.Tuple{ord(981, 4, 2)}); err != nil {
		t.Fatal(err)
	}
	if w := c.Watermark(); w.Pending != 0 {
		t.Fatalf("transaction left %d pending deferred statements", w.Pending)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
	rows, err := c.TableRows("orders")
	if err != nil {
		t.Fatal(err)
	}
	saw980, saw981 := false, false
	for _, r := range rows {
		saw980 = saw980 || r[0].I == 980
		saw981 = saw981 || r[0].I == 981
	}
	if !saw980 || saw981 {
		t.Fatalf("after rollback: deferred-then-flushed 980 stored=%v, rolled-back 981 stored=%v", saw980, saw981)
	}
}

// TestAsyncDDLDrainsQueue: DDL flushes the queue before touching the
// catalog, so a new view materializes from fully-applied state.
func TestAsyncDDLDrainsQueue(t *testing.T) {
	c := newAsyncCluster(t, catalog.StrategyAuto, nil)
	if err := c.Insert("orders", []types.Tuple{ord(990, 5, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateView(jv1Def("jv1b", catalog.StrategyNaive)); err != nil {
		t.Fatal(err)
	}
	if w := c.Watermark(); w.Pending != 0 {
		t.Fatalf("DDL left %d pending deferred statements", w.Pending)
	}
	for _, v := range []string{"jv1", "jv1b"} {
		if err := c.CheckViewConsistency(v); err != nil {
			t.Fatalf("%s: %v", v, err)
		}
	}
}

// TestAsyncDDLDrainRace: DDL must never drop an object that still has
// queued deltas. Concurrent writers hammer deferred inserts into a
// view-free table while the main goroutine churns DropTable/CreateTable
// on it; a delta slipping past the drain into a dropped table would
// wedge every later flush on a failed catalog lookup. The drain
// re-checks under the global lock (and gates new writers), so whatever
// the interleaving, the queue stays drainable.
func TestAsyncDDLDrainRace(t *testing.T) {
	c := newAsyncCluster(t, catalog.StrategyAuto, func(cfg *Config) { cfg.UseChannels = true })
	li := func(ok, ln int64) types.Tuple {
		return types.Tuple{types.Int(ok), types.Int(ln), types.Float(float64(ok))}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		w := int64(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// The table comes and goes under the churn: an insert
				// hitting the dropped window errors on the catalog
				// lookup and leaves no trace, which is the contract.
				_ = c.Insert("lineitem", []types.Tuple{li(w*100000+i, i%7)})
			}
		}()
	}
	for round := 0; round < 20; round++ {
		if err := c.DropTable("lineitem"); err != nil {
			t.Fatalf("round %d: drop: %v", round, err)
		}
		if err := c.CreateTable(lineitemTable()); err != nil {
			t.Fatalf("round %d: recreate: %v", round, err)
		}
	}
	close(stop)
	wg.Wait()
	// The queue must still drain: a delta referencing a dropped table
	// would fail every flush from here on.
	if err := c.Flush(); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	if w := c.Watermark(); w.Pending != 0 {
		t.Fatalf("queue wedged: %+v", w)
	}
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncAllStrategies runs a mixed deferred workload under each pinned
// strategy on both transports and checks the flushed view.
func TestAsyncAllStrategies(t *testing.T) {
	for _, strat := range allStrategies {
		for _, useChan := range []bool{false, true} {
			strat, useChan := strat, useChan
			t.Run(fmt.Sprintf("%s/chan=%v", strat, useChan), func(t *testing.T) {
				c := newAsyncCluster(t, strat, func(cfg *Config) { cfg.UseChannels = useChan })
				if err := c.Insert("orders", []types.Tuple{ord(800, 1, 1), ord(801, 2, 2)}); err != nil {
					t.Fatal(err)
				}
				if _, err := c.Delete("orders", eqOrderKey(3)); err != nil {
					t.Fatal(err)
				}
				if _, err := c.Update("orders", map[string]types.Value{"totalprice": types.Float(99)}, eqOrderKey(800)); err != nil {
					t.Fatal(err)
				}
				if err := c.Flush(); err != nil {
					t.Fatal(err)
				}
				if err := c.CheckViewConsistency("jv1"); err != nil {
					t.Fatal(err)
				}
				if err := c.CheckAllStructures(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestAsyncMultiTableEpoch: one epoch carrying deltas for several tables
// applies per-table groups and converges every view.
func TestAsyncMultiTableEpoch(t *testing.T) {
	c := newAsyncCluster(t, catalog.StrategyAuto, nil)
	c.ResetMetrics()
	if err := c.Insert("customer", []types.Tuple{cust(100, 5)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("orders", []types.Tuple{ord(850, 100, 1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete("customer", expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "custkey"}, R: expr.Const{V: types.Int(0)}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if m := c.Metrics(); m.Queue.EpochsFlushed != 1 {
		t.Fatalf("EpochsFlushed = %d, want 1 multi-table epoch", m.Queue.EpochsFlushed)
	}
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkEpochFlush measures one flush epoch of E deferred single-row
// inserts against the compiled batched pipeline (bench-smoke CI target).
func BenchmarkEpochFlush(b *testing.B) {
	c, err := New(Config{Nodes: 8, AsyncMaintenance: true})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	for _, tab := range []*catalog.Table{customerTable(), ordersTable()} {
		if err := c.CreateTable(tab); err != nil {
			b.Fatal(err)
		}
	}
	var customers []types.Tuple
	for ck := int64(0); ck < 64; ck++ {
		customers = append(customers, cust(ck, float64(ck)))
	}
	if err := c.Insert("customer", customers); err != nil {
		b.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"customer", "orders"} {
		if err := c.RefreshStats(name); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.CreateView(jv1Def("jv1", catalog.StrategyAuto)); err != nil {
		b.Fatal(err)
	}
	const epoch = 32
	next := int64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < epoch; j++ {
			if err := c.Insert("orders", []types.Tuple{ord(next, next%64, float64(next))}); err != nil {
				b.Fatal(err)
			}
			next++
		}
		if err := c.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}
