package cluster

// Online cluster elasticity: AddNode/DecommissionNode on a live cluster.
//
// The partition map (internal/hashpart) is an epoch-stamped slot→node
// table; changing topology means reassigning hash slots and moving each
// reassigned slot's data — base-fragment rows, auxiliary-relation rows,
// view rows and global-index entries — from its source to its destination
// while DML keeps committing. Each migration runs in three phases:
//
//	copy     Per base table (then per view), under a brief shared claim
//	         that blocks only that object's writers: snapshot the
//	         migrating slots' rows out of the source fragments into
//	         staging fragments at the destination, and arm a "tap" on the
//	         fragment before releasing the claim. From then on every
//	         mutation the coordinator delivers against migrating data is
//	         mirrored — value-filtered, rewritten to the staging names —
//	         into the delta catch-up queue.
//	catchup  Replay the queue against the staging fragments in batches
//	         while DML continues to run (and continues to enqueue).
//	cutover  Under an exclusive claim on every migrating hash range (plus
//	         the tables and views, so readers cannot observe the move):
//	         drain the queue, merge staging into the real fragments at
//	         the destinations, delete the moved rows at the sources, fix
//	         up global-index entries that referenced moved base rows, and
//	         atomically install the new partition map with an epoch bump
//	         (which invalidates every compiled maintenance plan).
//
// Every transition is logged to the coordinator's WAL. The commit point
// is the cutover's map install: a start record without a commit record
// means the migration never happened (presumed abort), and
// ResumeMigrations drops whatever staging fragments it left behind. The
// fault injector's migration-phase triggers (fault.CrashAtPhase,
// fault.FailAtPhase) land node crashes and coordinator failures exactly
// at these boundaries.

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"joinview/internal/catalog"
	"joinview/internal/fault"
	"joinview/internal/hashpart"
	"joinview/internal/lockmgr"
	"joinview/internal/netsim"
	"joinview/internal/node"
	"joinview/internal/storage"
	"joinview/internal/types"
	"joinview/internal/wal"
)

// ErrMigration marks operations refused because a migration is in flight
// (DDL, a second migration) or failed mid-flight.
var ErrMigration = errors.New("cluster: migration")

// migMove is one hash slot's relocation.
type migMove struct {
	Src, Dst int
}

// MigrationStats is the cost accounting of one migration.
type MigrationStats struct {
	// ID is the migration's cluster-unique id; Epoch the partition-map
	// epoch it installed (0 if aborted).
	ID    uint64
	Epoch uint64
	// Slots lists the hash slots that moved; Dsts the distinct
	// destination nodes.
	Slots []int
	Dsts  []int
	// RowsCopied counts tuples and global-index entries shipped during
	// the snapshot phase; PagesCopied their page-grained I/O equivalent
	// (snapshot reads + staging writes + cutover moves).
	RowsCopied  int64
	PagesCopied int64
	// Envelopes counts the transport deliveries the migration itself
	// issued (snapshot, replay, cutover and cleanup traffic).
	Envelopes int64
	// CatchupPeak is the delta queue's high-water mark; CatchupReplayed
	// the total mirrored operations replayed into staging.
	CatchupPeak     int
	CatchupReplayed int
	// CutoverStall is how long the exclusive cutover window lasted — the
	// only time concurrent DML is blocked cluster-wide.
	CutoverStall time.Duration
	// Elapsed is the whole migration's wall-clock time.
	Elapsed time.Duration
	// Committed reports whether the new map was installed.
	Committed bool
}

// MigrationStatus describes an in-flight migration for Topology.
type MigrationStatus struct {
	ID         uint64
	Phase      string
	Slots      []int
	Dsts       []int
	QueueDepth int
}

// Topology reports the cluster's partition map and elasticity state.
type Topology struct {
	// Epoch is the installed partition map's version.
	Epoch uint64
	// Nodes is the current node count; SlotOwner maps hash slot → node.
	Nodes     int
	SlotOwner []int
	// Retired lists decommissioned nodes (addressable, but owning no
	// slots).
	Retired []int
	// InFlight is the active migration, nil when idle.
	InFlight *MigrationStatus
	// ReplicationFactor is the configured replica count K (1 = no
	// replication); Replicas maps hash slot → follower nodes (nil at K=1).
	ReplicationFactor int
	Replicas          [][]int
	// NodeStatus maps node → liveness: "up", "suspect" (circuit breaker
	// open), "down" (unreachable, slots not yet promoted), "failed-over"
	// (down with slots promoted to followers) or "stale" (live but evicted
	// from its replica sets until the next repair).
	NodeStatus []string
	// Repair is the in-flight re-replication round, nil when idle.
	Repair *ReplRepairStatus
}

// migTap mirrors mutations against one migrating fragment into the
// catch-up queue. partIdx is the partition column's index in the
// fragment's tuples; staging maps destination node → staging fragment
// name there.
type migTap struct {
	hintCol string
	partIdx int
	staging map[int]string
}

// migStaging names one staging fragment for the WAL record and cleanup.
type migStaging struct {
	Node int
	Name string
	GI   bool
}

// migQueued is one mirrored operation awaiting replay at a destination.
type migQueued struct {
	dst int
	req any
}

// migration is the coordinator-side state of one in-flight migration.
type migration struct {
	id uint64
	// routing is the map in force while the migration runs (data still at
	// the sources); target is the map installed at cutover. Both have the
	// same slot count, so slot identity is stable.
	routing hashpart.Map
	target  hashpart.Map
	moves   map[int]migMove
	dsts    []int
	staging []migStaging

	mu      sync.Mutex
	phase   string
	taps    map[string]*migTap // base/AR/view fragment → tap
	giTaps  map[string]*migTap // global index → tap
	queue   []migQueued
	stopped bool // cutover reached or migration aborted: stop mirroring

	stats MigrationStats
	start time.Time
}

// Migration WAL records (carried in the coordinator log's Req payloads).
type migStartRec struct {
	ID      uint64
	Moves   map[int]migMove
	Target  hashpart.Map
	Staging []migStaging
}
type migPhaseRec struct {
	ID    uint64
	Phase string
}
type migCommitRec struct{ ID uint64 }
type migAbortRec struct{ ID uint64 }

// migCleanupRec records that the post-commit cleanup (source-copy scrub,
// staging drops) completed; a commit record without one means
// ResumeMigrations must roll the cleanup forward.
type migCleanupRec struct{ ID uint64 }

// MigrationActive reports whether a migration is in flight.
func (c *Cluster) MigrationActive() bool {
	c.migMu.RLock()
	defer c.migMu.RUnlock()
	return c.mig != nil
}

// LastMigration returns the most recent migration's cost accounting.
func (c *Cluster) LastMigration() (MigrationStats, bool) {
	c.migMu.RLock()
	defer c.migMu.RUnlock()
	if c.lastMig == nil {
		return MigrationStats{}, false
	}
	return *c.lastMig, true
}

// Topology reports the partition map, retired nodes and any in-flight
// migration.
func (c *Cluster) Topology() Topology {
	m := c.part.Map()
	t := Topology{
		Epoch:             m.Epoch,
		Nodes:             c.NumNodes(),
		SlotOwner:         append([]int(nil), m.Owner...),
		ReplicationFactor: c.cfg.ReplicationFactor,
	}
	if t.ReplicationFactor < 1 {
		t.ReplicationFactor = 1
	}
	if m.Replicated() {
		t.Replicas = make([][]int, len(m.Repl))
		for s, fs := range m.Repl {
			t.Replicas[s] = append([]int(nil), fs...)
		}
	}
	failedOver, stale, repairing := c.replStatus()
	t.Repair = repairing
	suspect := map[int]bool{}
	for _, n := range c.Suspect() {
		suspect[n] = true
	}
	fo := map[int]bool{}
	for _, n := range failedOver {
		fo[n] = true
	}
	st := map[int]bool{}
	for _, n := range stale {
		st[n] = true
	}
	t.NodeStatus = make([]string, t.Nodes)
	for n := 0; n < t.Nodes; n++ {
		switch {
		case fo[n]:
			t.NodeStatus[n] = "failed-over"
		case c.isDown(n):
			t.NodeStatus[n] = "down"
		case st[n]:
			t.NodeStatus[n] = "stale"
		case suspect[n]:
			t.NodeStatus[n] = "suspect"
		default:
			t.NodeStatus[n] = "up"
		}
	}
	c.migMu.RLock()
	for n := range c.retired {
		t.Retired = append(t.Retired, n)
	}
	sort.Ints(t.Retired)
	if mig := c.mig; mig != nil {
		mig.mu.Lock()
		t.InFlight = &MigrationStatus{
			ID:         mig.id,
			Phase:      mig.phase,
			Slots:      sortedSlots(mig.moves),
			Dsts:       append([]int(nil), mig.dsts...),
			QueueDepth: len(mig.queue),
		}
		mig.mu.Unlock()
	}
	c.migMu.RUnlock()
	return t
}

// failIfMigrating refuses catalog-shape changes while data is in flight:
// a fragment created mid-migration would have no staging copy and no tap.
func (c *Cluster) failIfMigrating() error {
	if c.MigrationActive() {
		return fmt.Errorf("%w in flight: retry after it completes", ErrMigration)
	}
	return nil
}

// migRangeClaims returns one claim per in-flight hash range, in the given
// mode. DML statements take them shared; the cutover takes them
// exclusive, so the map install cannot slide under a statement mid-flight
// against the moving data. Idle clusters pay one atomic load.
func (c *Cluster) migRangeClaims(mode func(string) lockmgr.Claim) []lockmgr.Claim {
	c.migMu.RLock()
	m := c.mig
	c.migMu.RUnlock()
	if m == nil {
		return nil
	}
	claims := make([]lockmgr.Claim, 0, len(m.moves))
	for _, s := range sortedSlots(m.moves) {
		claims = append(claims, mode(migRangeRes(s)))
	}
	return claims
}

func migRangeRes(slot int) string { return fmt.Sprintf("mig:slot:%d", slot) }

func sortedSlots(moves map[int]migMove) []int {
	out := make([]int, 0, len(moves))
	for s := range moves {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// AddNode grows the cluster by one data-server node: it provisions the
// node (transport inbox, empty fragments of every cataloged object),
// installs a slot-doubled map when the slot table is too coarse, then
// live-migrates a proportional share of hash slots to the new node while
// DML continues. It returns the new node's id; on a migration error the
// node exists but owns no slots — RebalanceNode(id) retries the data
// movement.
func (c *Cluster) AddNode() (int, error) {
	if err := c.failIfReplicated("AddNode"); err != nil {
		return -1, err
	}
	dst, err := c.provisionNode()
	if err != nil {
		return -1, err
	}
	return dst, c.RebalanceNode(dst)
}

// provisionNode creates and wires a new empty node under the global
// exclusive lock.
func (c *Cluster) provisionNode() (int, error) {
	h := c.lockGlobal()
	defer h.Release()
	if err := c.failIfDegraded(); err != nil {
		return -1, err
	}
	if err := c.failIfMigrating(); err != nil {
		return -1, err
	}
	adder, ok := c.base.(netsim.NodeAdder)
	if !ok {
		return -1, fmt.Errorf("cluster: transport %T does not support adding nodes", c.base)
	}
	dst := c.NumNodes()
	dn := node.New(dst, c.cfg.MemPages)
	if c.cfg.BufferPages > 0 {
		dn.SetBufferPages(c.cfg.BufferPages)
	}
	if c.cfg.Durability {
		dn.EnableDurability(c.cfg.PageRows, c.cfg.CheckpointEvery)
	}
	if _, err := adder.AddNode(dn.Handler()); err != nil {
		return -1, err
	}
	c.nmu.Lock()
	c.nodes = append(c.nodes, dn)
	c.nmu.Unlock()
	c.nNodes.Store(int32(dst + 1))

	// Empty fragments of every cataloged object, so broadcasts, gathers
	// and checkpoints uniformly include the new node from here on.
	for _, tn := range c.cat.Tables() {
		t, err := c.cat.Table(tn)
		if err != nil {
			return dst, err
		}
		if _, err := c.rawCall(dst, node.CreateFragment{
			Name: t.Name, Schema: t.Schema, ClusterCol: t.ClusterCol, PageRows: c.cfg.PageRows,
		}); err != nil {
			return dst, err
		}
		for _, ix := range t.Indexes {
			if _, err := c.rawCall(dst, node.CreateIndex{Frag: t.Name, Name: ix.Name, Col: ix.Col}); err != nil {
				return dst, err
			}
		}
		for _, ar := range c.cat.AuxRelsFor(tn) {
			if _, err := c.rawCall(dst, node.CreateFragment{
				Name: ar.Name, Schema: ar.Schema, ClusterCol: ar.PartitionCol, PageRows: c.cfg.PageRows,
			}); err != nil {
				return dst, err
			}
		}
		for _, gi := range c.cat.GlobalIndexesFor(tn) {
			if _, err := c.rawCall(dst, node.CreateGlobalIndex{Name: gi.Name, DistClustered: gi.DistClustered}); err != nil {
				return dst, err
			}
		}
	}
	for _, vn := range c.cat.Views() {
		v, err := c.cat.View(vn)
		if err != nil {
			return dst, err
		}
		if _, err := c.rawCall(dst, node.CreateFragment{
			Name: v.Name, Schema: v.Schema, ClusterCol: v.PartitionQualified(), PageRows: c.cfg.PageRows,
		}); err != nil {
			return dst, err
		}
	}

	// Refine the slot table so the new node's share is expressible, then
	// install it: owners are repeated, so routing is unchanged — only the
	// epoch moves (compiled plans recompile against identical routing).
	m := c.part.Map()
	for len(m.Owner) < 2*(dst+1) {
		m = m.Doubled()
	}
	m.Nodes = dst + 1
	m.Epoch++
	if err := c.part.Install(m); err != nil {
		return dst, err
	}
	c.cat.SetPartitionMap(m)
	return dst, nil
}

// RebalanceNode live-migrates a proportional share of hash slots to the
// given (typically just-added, slot-less) node. Shares are stolen from
// the most-loaded owners.
func (c *Cluster) RebalanceNode(dst int) error {
	if err := c.failIfReplicated("RebalanceNode"); err != nil {
		return err
	}
	cur := c.part.Map()
	if dst < 0 || dst >= c.NumNodes() {
		return fmt.Errorf("cluster: node %d out of range [0,%d)", dst, c.NumNodes())
	}
	active := c.NumNodes() - c.numRetired()
	want := (len(cur.Owner) + active/2) / active
	if want < 1 {
		want = 1
	}
	moves := map[int]migMove{}
	target := cur.Clone()
	for len(target.SlotsOwnedBy(dst)) < want {
		heavy, slots := -1, 0
		for n := 0; n < target.Nodes; n++ {
			if n == dst {
				continue
			}
			if owned := len(target.SlotsOwnedBy(n)); owned > slots {
				heavy, slots = n, owned
			}
		}
		if heavy < 0 || slots <= len(target.SlotsOwnedBy(dst))+1 {
			break // nothing meaningfully heavier to steal from
		}
		s := target.SlotsOwnedBy(heavy)[0]
		moves[s] = migMove{Src: heavy, Dst: dst}
		target.Owner[s] = dst
	}
	if len(moves) == 0 {
		return nil
	}
	target.Epoch = cur.Epoch + 1
	return c.migrate(cur, target, moves)
}

// DecommissionNode drains a node: every hash slot it owns is
// live-migrated to the least-loaded surviving nodes, after which the node
// is marked retired — still addressable (its empty fragments keep
// broadcasts uniform) but owning no data. The node can then be taken
// down without degrading the cluster.
func (c *Cluster) DecommissionNode(n int) error {
	if err := c.failIfReplicated("DecommissionNode"); err != nil {
		return err
	}
	cur := c.part.Map()
	if n < 0 || n >= c.NumNodes() {
		return fmt.Errorf("cluster: node %d out of range [0,%d)", n, c.NumNodes())
	}
	if c.numRetired() >= c.NumNodes()-1 && len(cur.SlotsOwnedBy(n)) > 0 {
		return fmt.Errorf("cluster: cannot decommission the last active node")
	}
	target := cur.Clone()
	moves := map[int]migMove{}
	for _, s := range cur.SlotsOwnedBy(n) {
		light, slots := -1, int(^uint(0)>>1)
		for d := 0; d < target.Nodes; d++ {
			if d == n || c.isRetired(d) {
				continue
			}
			if owned := len(target.SlotsOwnedBy(d)); owned < slots {
				light, slots = d, owned
			}
		}
		if light < 0 {
			return fmt.Errorf("cluster: no surviving node to drain node %d to", n)
		}
		moves[s] = migMove{Src: n, Dst: light}
		target.Owner[s] = light
	}
	if len(moves) > 0 {
		target.Epoch = cur.Epoch + 1
		if err := c.migrate(cur, target, moves); err != nil {
			return err
		}
	}
	c.migMu.Lock()
	c.retired[n] = true
	c.migMu.Unlock()
	return nil
}

func (c *Cluster) numRetired() int {
	c.migMu.RLock()
	defer c.migMu.RUnlock()
	return len(c.retired)
}

func (c *Cluster) isRetired(n int) bool {
	c.migMu.RLock()
	defer c.migMu.RUnlock()
	return c.retired[n]
}

// migrate runs the three-phase live migration of the given slot moves.
func (c *Cluster) migrate(routing, target hashpart.Map, moves map[int]migMove) error {
	m := &migration{
		id:      c.migSeq.Add(1),
		routing: routing,
		target:  target,
		moves:   moves,
		taps:    map[string]*migTap{},
		giTaps:  map[string]*migTap{},
		start:   time.Now(),
	}
	dstSet := map[int]bool{}
	for _, mv := range moves {
		dstSet[mv.Dst] = true
	}
	for d := range dstSet {
		m.dsts = append(m.dsts, d)
	}
	sort.Ints(m.dsts)
	m.stats = MigrationStats{ID: m.id, Slots: sortedSlots(moves), Dsts: m.dsts}

	// Plan every staging fragment up front so the WAL start record is a
	// complete cleanup manifest even if the coordinator dies mid-copy.
	for _, tn := range c.cat.Tables() {
		for _, d := range m.dsts {
			m.staging = append(m.staging, migStaging{Node: d, Name: m.stagingName(tn)})
		}
		for _, ar := range c.cat.AuxRelsFor(tn) {
			for _, d := range m.dsts {
				m.staging = append(m.staging, migStaging{Node: d, Name: m.stagingName(ar.Name)})
			}
		}
		for _, gi := range c.cat.GlobalIndexesFor(tn) {
			for _, d := range m.dsts {
				m.staging = append(m.staging, migStaging{Node: d, Name: m.stagingName(gi.Name), GI: true})
			}
		}
	}
	for _, vn := range c.cat.Views() {
		for _, d := range m.dsts {
			m.staging = append(m.staging, migStaging{Node: d, Name: m.stagingName(vn)})
		}
	}

	// Register the migration: from here on DML takes shared claims on the
	// moving ranges and DDL is refused.
	c.migMu.Lock()
	if c.mig != nil {
		c.migMu.Unlock()
		return fmt.Errorf("%w already in flight", ErrMigration)
	}
	c.mig = m
	c.migMu.Unlock()

	c.migLog(migStartRec{ID: m.id, Moves: moves, Target: target, Staging: m.staging}, true)
	err := c.runMigration(m)
	if err != nil {
		if m.committed() {
			// The target map is installed — the migration happened; only
			// the post-commit cleanup is unfinished. Roll forward, never
			// back: ResumeMigrations scrubs the leftover source copies.
			c.finishMigration(m)
			return fmt.Errorf("%w %d committed but cleanup pending (%v): run ResumeMigrations", ErrMigration, m.id, err)
		}
		c.abortMigration(m, err)
		return fmt.Errorf("%w %d aborted: %w", ErrMigration, m.id, err)
	}
	c.finishMigration(m)
	return nil
}

// committed reports whether the migration passed its commit point (target
// map installed).
func (m *migration) committed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats.Committed
}

// reachedCutover reports whether the cutover phase began (destination
// state may hold merged data; an abort must scrub it and rebuild GIs).
func (m *migration) reachedCutover() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.phase == "cutover" || m.phase == "cleanup"
}

// finishMigration deregisters the migration and publishes its stats.
func (c *Cluster) finishMigration(m *migration) {
	m.mu.Lock()
	m.stopped = true
	m.stats.Elapsed = time.Since(m.start)
	stats := m.stats
	m.mu.Unlock()
	c.migMu.Lock()
	c.mig = nil
	c.lastMig = &stats
	c.migMu.Unlock()
}

func (m *migration) stagingName(frag string) string {
	return fmt.Sprintf("%s~mig%d", frag, m.id)
}

// setPhase records the phase and announces it to the fault injector,
// whose armed triggers may crash a node here — or fail the coordinator
// itself (returning ErrPhaseFail), which aborts the migration without
// cleanup; ResumeMigrations later rolls it back from the WAL manifest.
func (c *Cluster) setPhase(m *migration, phase string) error {
	m.mu.Lock()
	m.phase = phase
	m.mu.Unlock()
	c.migLog(migPhaseRec{ID: m.id, Phase: phase}, false)
	return c.cfg.Faults.Phase(phase)
}

// migLog appends a migration record to the coordinator's WAL.
func (c *Cluster) migLog(rec any, force bool) {
	kind := wal.KindRedo
	switch rec.(type) {
	case migCommitRec:
		kind = wal.KindCommit
	case migAbortRec:
		kind = wal.KindAbort
	}
	c.coordLog.Append(wal.Record{Kind: kind, Req: rec})
	if force {
		c.coordLog.Force()
	}
}

// migCall issues one migration delivery (counted in the stats).
func (c *Cluster) migCall(m *migration, to int, req any) (any, error) {
	m.mu.Lock()
	m.stats.Envelopes++
	m.mu.Unlock()
	return c.rawCall(to, req)
}

// runMigration executes the three phases.
func (c *Cluster) runMigration(m *migration) error {
	// Phase 1: snapshot copy, object by object, arming taps.
	for _, tn := range c.cat.Tables() {
		if err := c.copyTable(m, tn); err != nil {
			return err
		}
	}
	for _, vn := range c.cat.Views() {
		if err := c.copyView(m, vn); err != nil {
			return err
		}
	}
	// Phase 2: replay the delta queue while DML keeps running; the
	// remainder drains under the cutover claim.
	if err := c.setPhase(m, "catchup"); err != nil {
		return err
	}
	for i := 0; i < 8; i++ {
		n, err := c.replayQueue(m)
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
	}
	// Phase 3: cutover.
	return c.cutover(m)
}

// lockCopy acquires the snapshot claim for one object: shared on the
// object (blocking exactly its writers), global in serial modes.
func (c *Cluster) lockCopy(names ...string) *lockmgr.Held {
	return c.lockRead(names...)
}

// migMoved reports whether a value's slot is migrating and currently
// homed at node `at`.
func (m *migration) migMoved(v types.Value, at int) (migMove, bool) {
	s := m.routing.Slot(v)
	mv, ok := m.moves[s]
	if !ok || mv.Src != at {
		return migMove{}, false
	}
	return mv, true
}

// armTap registers the mirror for one fragment. Must be called while the
// copy claim is still held, so no mutation lands between snapshot and tap.
func (m *migration) armTap(frag, hintCol string, partIdx int, gi bool) {
	t := &migTap{hintCol: hintCol, partIdx: partIdx, staging: map[int]string{}}
	for _, d := range m.dsts {
		t.staging[d] = m.stagingName(frag)
	}
	m.mu.Lock()
	if gi {
		m.giTaps[frag] = t
	} else {
		m.taps[frag] = t
	}
	m.mu.Unlock()
}

// copyTable snapshots one base table's migrating rows — plus its
// auxiliary relations' rows and global-index entries — into staging at
// the destinations, arming the taps before the claim is released.
func (c *Cluster) copyTable(m *migration, tn string) error {
	if err := c.setPhase(m, "copy:"+tn); err != nil {
		return err
	}
	t, err := c.cat.Table(tn)
	if err != nil {
		return err
	}
	ars := c.cat.AuxRelsFor(tn)
	gis := c.cat.GlobalIndexesFor(tn)
	h := c.lockCopy(tn)
	defer h.Release()

	// Staging fragments exist at every destination regardless of content,
	// so cleanup and cutover are uniform.
	for _, d := range m.dsts {
		if _, err := c.migCall(m, d, node.CreateFragment{
			Name: m.stagingName(tn), Schema: t.Schema, ClusterCol: t.ClusterCol, PageRows: c.cfg.PageRows,
		}); err != nil {
			return err
		}
		for _, ar := range ars {
			if _, err := c.migCall(m, d, node.CreateFragment{
				Name: m.stagingName(ar.Name), Schema: ar.Schema, ClusterCol: ar.PartitionCol, PageRows: c.cfg.PageRows,
			}); err != nil {
				return err
			}
		}
		for _, gi := range gis {
			if _, err := c.migCall(m, d, node.CreateGlobalIndex{Name: m.stagingName(gi.Name), DistClustered: gi.DistClustered}); err != nil {
				return err
			}
		}
	}
	pi := t.Schema.MustColIndex(t.PartitionCol)
	if err := c.copyFragSlots(m, tn, pi); err != nil {
		return err
	}
	m.armTap(tn, t.PartitionCol, pi, false)
	for _, ar := range ars {
		api := ar.Schema.MustColIndex(ar.PartitionCol)
		if err := c.copyFragSlots(m, ar.Name, api); err != nil {
			return err
		}
		m.armTap(ar.Name, ar.PartitionCol, api, false)
	}
	for _, gi := range gis {
		if err := c.copyGISlots(m, gi.Name); err != nil {
			return err
		}
		m.armTap(gi.Name, "", -1, true)
	}
	return nil
}

// copyView snapshots one view's migrating rows into staging.
func (c *Cluster) copyView(m *migration, vn string) error {
	if err := c.setPhase(m, "copy:"+vn); err != nil {
		return err
	}
	v, err := c.cat.View(vn)
	if err != nil {
		return err
	}
	h := c.lockCopy(vn)
	defer h.Release()
	for _, d := range m.dsts {
		if _, err := c.migCall(m, d, node.CreateFragment{
			Name: m.stagingName(vn), Schema: v.Schema, ClusterCol: v.PartitionQualified(), PageRows: c.cfg.PageRows,
		}); err != nil {
			return err
		}
	}
	pi := v.Schema.MustColIndex(v.PartitionQualified())
	if err := c.copyFragSlots(m, vn, pi); err != nil {
		return err
	}
	m.armTap(vn, v.PartitionQualified(), pi, false)
	return nil
}

// copyFragSlots ships one fragment's migrating rows from each source to
// the staging fragment at its destination.
func (c *Cluster) copyFragSlots(m *migration, frag string, partIdx int) error {
	for _, src := range m.srcNodes() {
		resp, err := c.migCall(m, src, node.ScanWithRows{Frag: frag})
		if err != nil {
			return err
		}
		rr := resp.(node.RowsResult)
		byDst := map[int][]types.Tuple{}
		for _, tup := range rr.Tuples {
			if mv, ok := m.migMoved(tup[partIdx], src); ok {
				byDst[mv.Dst] = append(byDst[mv.Dst], tup)
			}
		}
		for d, tuples := range byDst {
			if _, err := c.migCall(m, d, node.Insert{Frag: m.stagingName(frag), Tuples: tuples, Unmetered: true}); err != nil {
				return err
			}
			m.mu.Lock()
			m.stats.RowsCopied += int64(len(tuples))
			m.stats.PagesCopied += 2 * c.pageCount(len(tuples)) // read at src + write at dst
			m.mu.Unlock()
		}
	}
	return nil
}

// copyGISlots ships one global index's migrating-value entries from each
// source's fragment to the staging index at its destination.
func (c *Cluster) copyGISlots(m *migration, gi string) error {
	for _, src := range m.srcNodes() {
		resp, err := c.migCall(m, src, node.GIScan{GI: gi})
		if err != nil {
			return err
		}
		sc := resp.(node.GIScanResult)
		type batch struct {
			vals []types.Value
			gs   []storage.GlobalRowID
		}
		byDst := map[int]*batch{}
		for i, v := range sc.Vals {
			if mv, ok := m.migMoved(v, src); ok {
				b := byDst[mv.Dst]
				if b == nil {
					b = &batch{}
					byDst[mv.Dst] = b
				}
				b.vals = append(b.vals, v)
				b.gs = append(b.gs, sc.Gs[i])
			}
		}
		for d, b := range byDst {
			if _, err := c.migCall(m, d, node.GIInsertBatch{GI: m.stagingName(gi), Vals: b.vals, Gs: b.gs}); err != nil {
				return err
			}
			m.mu.Lock()
			m.stats.RowsCopied += int64(len(b.vals))
			m.stats.PagesCopied += 2 * c.pageCount(len(b.vals))
			m.mu.Unlock()
		}
	}
	return nil
}

// srcNodes lists the distinct source nodes of the migration's moves.
func (m *migration) srcNodes() []int {
	set := map[int]bool{}
	for _, mv := range m.moves {
		set[mv.Src] = true
	}
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// enqueue appends one mirrored operation to the catch-up queue.
func (m *migration) enqueue(dst int, req any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return
	}
	m.queue = append(m.queue, migQueued{dst: dst, req: req})
	if len(m.queue) > m.stats.CatchupPeak {
		m.stats.CatchupPeak = len(m.queue)
	}
}

// replayQueue drains the current queue snapshot against the staging
// fragments, returning how many operations it replayed. New mutations
// keep arriving behind the snapshot; the cutover's final drain runs under
// the exclusive claims, when nothing can arrive anymore.
func (c *Cluster) replayQueue(m *migration) (int, error) {
	m.mu.Lock()
	batch := m.queue
	m.queue = nil
	m.mu.Unlock()
	for _, q := range batch {
		if _, err := c.migCall(m, q.dst, q.req); err != nil {
			return 0, err
		}
	}
	m.mu.Lock()
	m.stats.CatchupReplayed += len(batch)
	m.mu.Unlock()
	return len(batch), nil
}

// tapMutation mirrors one successfully delivered mutation into the
// catch-up queue if it touches a migrating hash range. It is called from
// the resilient delivery layer on every applied DML sub-request (normal
// path, broadcast path and in-doubt resolution), including compensations,
// so the staging fragments see exactly the physical history the sources
// see. Recovery traffic (rawCall/rawDeliver) is deliberately not tapped:
// derived-fragment rebuilds regenerate source state wholesale and would
// double-apply against staging.
func (c *Cluster) tapMutation(to int, wreq, resp any) {
	c.mirrorMutation(to, wreq, resp)
	c.migMu.RLock()
	m := c.mig
	c.migMu.RUnlock()
	if m == nil {
		return
	}
	m.absorb(to, wreq, resp)
}

// absorb inspects one applied request and enqueues its mirror.
func (m *migration) absorb(to int, wreq, resp any) {
	if s, ok := wreq.(node.Seq); ok {
		wreq = s.Req
	}
	switch req := wreq.(type) {
	case node.Insert:
		t := m.tapFor(req.Frag)
		if t == nil {
			return
		}
		m.mirrorTuples(to, t, req.Tuples, func(dst int, tuples []types.Tuple) any {
			return node.Insert{Frag: t.staging[dst], Tuples: tuples, Unmetered: true}
		})
	case node.RestoreRows:
		t := m.tapFor(req.Frag)
		if t == nil {
			return
		}
		m.mirrorTuples(to, t, req.Tuples, func(dst int, tuples []types.Tuple) any {
			return node.Insert{Frag: t.staging[dst], Tuples: tuples, Unmetered: true}
		})
	case node.DeleteRows:
		t := m.tapFor(req.Frag)
		if t == nil {
			return
		}
		dr, ok := resp.(node.DeleteResult)
		if !ok {
			return
		}
		m.mirrorTuples(to, t, dr.Tuples, func(dst int, tuples []types.Tuple) any {
			return node.DeleteMatch{Frag: t.staging[dst], HintCol: t.hintCol, Tuples: tuples}
		})
	case node.DeleteMatch:
		t := m.tapFor(req.Frag)
		if t == nil {
			return
		}
		dr, ok := resp.(node.DeleteResult)
		if !ok {
			return
		}
		m.mirrorTuples(to, t, dr.Tuples, func(dst int, tuples []types.Tuple) any {
			return node.DeleteMatch{Frag: t.staging[dst], HintCol: t.hintCol, Tuples: tuples}
		})
	case node.AggApply:
		t := m.tapFor(req.Frag)
		if t == nil {
			return
		}
		byDst := map[int][]int{}
		for i, key := range req.Keys {
			if mv, ok := m.migMoved(key[t.partIdx], to); ok {
				byDst[mv.Dst] = append(byDst[mv.Dst], i)
			}
		}
		for dst, idxs := range byDst {
			mirror := node.AggApply{
				Frag: t.staging[dst], HintCol: req.HintCol,
				GroupLen: req.GroupLen, CountPos: req.CountPos,
			}
			for _, i := range idxs {
				mirror.Keys = append(mirror.Keys, req.Keys[i])
				mirror.Deltas = append(mirror.Deltas, req.Deltas[i])
			}
			m.enqueue(dst, mirror)
		}
	case node.GIInsert:
		t := m.giTapFor(req.GI)
		if t == nil {
			return
		}
		if mv, ok := m.migMoved(req.Val, to); ok {
			m.enqueue(mv.Dst, node.GIInsert{GI: t.staging[mv.Dst], Val: req.Val, G: req.G})
		}
	case node.GIDelete:
		t := m.giTapFor(req.GI)
		if t == nil {
			return
		}
		if mv, ok := m.migMoved(req.Val, to); ok {
			m.enqueue(mv.Dst, node.GIDelete{GI: t.staging[mv.Dst], Val: req.Val, G: req.G})
		}
	case node.GIInsertBatch:
		t := m.giTapFor(req.GI)
		if t == nil {
			return
		}
		m.mirrorGI(to, req.Vals, req.Gs, func(dst int, vals []types.Value, gs []storage.GlobalRowID) any {
			return node.GIInsertBatch{GI: t.staging[dst], Vals: vals, Gs: gs}
		})
	case node.GIDeleteBatch:
		t := m.giTapFor(req.GI)
		if t == nil {
			return
		}
		m.mirrorGI(to, req.Vals, req.Gs, func(dst int, vals []types.Value, gs []storage.GlobalRowID) any {
			return node.GIDeleteBatch{GI: t.staging[dst], Vals: vals, Gs: gs}
		})
	}
}

func (m *migration) tapFor(frag string) *migTap {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return nil
	}
	return m.taps[frag]
}

func (m *migration) giTapFor(gi string) *migTap {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return nil
	}
	return m.giTaps[gi]
}

// mirrorTuples filters tuples to the migrating slots homed at `to` and
// enqueues one mirrored request per destination.
func (m *migration) mirrorTuples(to int, t *migTap, tuples []types.Tuple, build func(dst int, tuples []types.Tuple) any) {
	byDst := map[int][]types.Tuple{}
	for _, tup := range tuples {
		if mv, ok := m.migMoved(tup[t.partIdx], to); ok {
			byDst[mv.Dst] = append(byDst[mv.Dst], tup)
		}
	}
	for dst, ts := range byDst {
		m.enqueue(dst, build(dst, ts))
	}
}

// mirrorGI is mirrorTuples for global-index entry batches.
func (m *migration) mirrorGI(to int, vals []types.Value, gs []storage.GlobalRowID, build func(int, []types.Value, []storage.GlobalRowID) any) {
	type batch struct {
		vals []types.Value
		gs   []storage.GlobalRowID
	}
	byDst := map[int]*batch{}
	for i, v := range vals {
		if mv, ok := m.migMoved(v, to); ok {
			b := byDst[mv.Dst]
			if b == nil {
				b = &batch{}
				byDst[mv.Dst] = b
			}
			b.vals = append(b.vals, v)
			b.gs = append(b.gs, gs[i])
		}
	}
	for dst, b := range byDst {
		m.enqueue(dst, build(dst, b.vals, b.gs))
	}
}

// cutover is the migration's commit: under exclusive claims on every
// moving hash range plus every table and view (so no statement or locked
// read can observe the move), it drains the queue, merges staging into
// the real fragments, fixes up global-index entries referencing moved
// base rows, installs the target map and scrubs the source copies.
//
// Crash-safety shape: everything BEFORE the map install is additive —
// destinations gain redundant copies while the sources stay authoritative
// and intact, so an abort scrubs destination residue (and rebuilds GIs,
// whose fixups are the one pre-commit mutation that is not purely
// additive). Everything AFTER the install only removes the now-stale
// source copies, is idempotent, and rolls forward: a commit record
// without a cleanup record makes ResumeMigrations re-run the scrub.
func (c *Cluster) cutover(m *migration) error {
	if err := c.setPhase(m, "cutover"); err != nil {
		return err
	}
	var h *lockmgr.Held
	if c.serialStmts() {
		h = c.lockGlobal()
	} else {
		h = c.lm.AcquireShared()
		var claims []lockmgr.Claim
		claims = append(claims, c.migRangeClaims(lockmgr.X)...)
		for _, tn := range c.cat.Tables() {
			claims = append(claims, lockmgr.X(tn))
		}
		for _, vn := range c.cat.Views() {
			claims = append(claims, lockmgr.X(vn))
		}
		h.Lock(claims...)
		// MVCC snapshot readers hold no table claims, so the exclusive
		// claims above do not fence them; the read fence does. Taken after
		// the claims (readers never acquire claims, so the order is
		// acyclic) and released with them.
		c.readFence.Lock()
		defer c.readFence.Unlock()
	}
	defer h.Release()
	stallStart := time.Now()

	// Final drain, then stop the mirror: nothing else can arrive while
	// the claims are held.
	if _, err := c.replayQueue(m); err != nil {
		return err
	}
	m.mu.Lock()
	m.stopped = true
	m.mu.Unlock()

	// Additive apply: staging → real fragments at every destination. For
	// tables with global indexes, also record the moved rows' old (source)
	// and new (destination) row ids for the entry fixups.
	type movedRows struct {
		at     int
		rows   []storage.RowID
		tuples []types.Tuple
	}
	fixDel := map[string][]movedRows{} // table → per-src old rows
	fixIns := map[string][]movedRows{} // table → per-dst new rows
	for _, tn := range c.cat.Tables() {
		t, err := c.cat.Table(tn)
		if err != nil {
			return err
		}
		needRows := len(c.cat.GlobalIndexesFor(tn)) > 0
		pi := t.Schema.MustColIndex(t.PartitionCol)
		if needRows {
			for _, src := range m.srcNodes() {
				resp, err := c.migCall(m, src, node.ScanWithRows{Frag: tn})
				if err != nil {
					return err
				}
				rr := resp.(node.RowsResult)
				mv := movedRows{at: src}
				for i, tup := range rr.Tuples {
					if _, ok := m.migMoved(tup[pi], src); ok {
						mv.rows = append(mv.rows, rr.Rows[i])
						mv.tuples = append(mv.tuples, tup)
					}
				}
				if len(mv.rows) > 0 {
					fixDel[tn] = append(fixDel[tn], mv)
				}
			}
		}
		appendFrag := func(frag string) error {
			for _, d := range m.dsts {
				resp, err := c.migCall(m, d, node.ScanWithRows{Frag: m.stagingName(frag)})
				if err != nil {
					return err
				}
				rr := resp.(node.RowsResult)
				if len(rr.Tuples) == 0 {
					continue
				}
				iresp, err := c.migCall(m, d, node.Insert{Frag: frag, Tuples: rr.Tuples, Unmetered: true})
				if err != nil {
					return err
				}
				if needRows && frag == tn {
					fixIns[tn] = append(fixIns[tn], movedRows{
						at: d, rows: iresp.(node.InsertResult).Rows, tuples: rr.Tuples,
					})
				}
				m.mu.Lock()
				m.stats.PagesCopied += 2 * c.pageCount(len(rr.Tuples))
				m.mu.Unlock()
			}
			return nil
		}
		if err := appendFrag(tn); err != nil {
			return err
		}
		for _, ar := range c.cat.AuxRelsFor(tn) {
			if err := appendFrag(ar.Name); err != nil {
				return err
			}
		}
		for _, gi := range c.cat.GlobalIndexesFor(tn) {
			for _, d := range m.dsts {
				resp, err := c.migCall(m, d, node.GIScan{GI: m.stagingName(gi.Name)})
				if err != nil {
					return err
				}
				sc := resp.(node.GIScanResult)
				if len(sc.Vals) == 0 {
					continue
				}
				if _, err := c.migCall(m, d, node.GIInsertBatch{GI: gi.Name, Vals: sc.Vals, Gs: sc.Gs}); err != nil {
					return err
				}
				m.mu.Lock()
				m.stats.PagesCopied += 2 * c.pageCount(len(sc.Vals))
				m.mu.Unlock()
			}
		}
	}
	for _, vn := range c.cat.Views() {
		for _, d := range m.dsts {
			resp, err := c.migCall(m, d, node.ScanWithRows{Frag: m.stagingName(vn)})
			if err != nil {
				return err
			}
			rr := resp.(node.RowsResult)
			if len(rr.Tuples) == 0 {
				continue
			}
			if _, err := c.migCall(m, d, node.Insert{Frag: vn, Tuples: rr.Tuples, Unmetered: true}); err != nil {
				return err
			}
			m.mu.Lock()
			m.stats.PagesCopied += 2 * c.pageCount(len(rr.Tuples))
			m.mu.Unlock()
		}
	}

	// Global-index fixups: every moved base row got a fresh row id at its
	// destination, so the (value, global-row-id) entries referencing the
	// old source rows are replaced at each value's target-map home. (The
	// merge above already placed migrating-value entries at their new
	// homes; the stale source-side copies fall to the post-commit scrub.)
	for _, tn := range c.cat.Tables() {
		gis := c.cat.GlobalIndexesFor(tn)
		if len(gis) == 0 {
			continue
		}
		t, err := c.cat.Table(tn)
		if err != nil {
			return err
		}
		for _, mv := range fixDel[tn] {
			if err := c.giFixup(m, gis, t, mv.at, mv.rows, mv.tuples, false); err != nil {
				return err
			}
		}
		for _, mv := range fixIns[tn] {
			if err := c.giFixup(m, gis, t, mv.at, mv.rows, mv.tuples, true); err != nil {
				return err
			}
		}
	}

	// Commit point: install the target map. Plan-cache entries recompile
	// on the epoch bump; new statements route to the new homes.
	if err := c.part.Install(m.target); err != nil {
		return err
	}
	c.cat.SetPartitionMap(m.target)
	c.migLog(migCommitRec{ID: m.id}, true)
	m.mu.Lock()
	m.stats.Epoch = m.target.Epoch
	m.stats.Committed = true
	m.mu.Unlock()

	// Post-commit cleanup (roll-forward on failure): every row or entry
	// now misplaced under the installed map is a stale source copy.
	if err := c.setPhase(m, "cleanup"); err != nil {
		return err
	}
	if err := c.scrubMisplaced(m); err != nil {
		return err
	}
	c.dropStaging(m.staging)
	c.migLog(migCleanupRec{ID: m.id}, true)

	m.mu.Lock()
	m.stats.CutoverStall = time.Since(stallStart)
	m.mu.Unlock()
	return c.cfg.Faults.Phase("done")
}

// scrubMisplaced deletes every fragment row and global-index entry that
// does not sit at its home under the currently installed partition map.
// In a healthy cluster nothing is misplaced; after a cutover's map
// install, exactly the moved rows' stale source copies are. Idempotent,
// so ResumeMigrations can roll a half-finished cleanup forward. Callers
// hold either the cutover claims or the global lock. A nil m scrubs
// without cost accounting.
func (c *Cluster) scrubMisplaced(m *migration) error {
	call := func(to int, req any) (any, error) {
		if m != nil {
			return c.migCall(m, to, req)
		}
		return c.rawCall(to, req)
	}
	scrubFrag := func(frag string, partIdx int) error {
		for n := 0; n < c.NumNodes(); n++ {
			resp, err := call(n, node.ScanWithRows{Frag: frag})
			if err != nil {
				return err
			}
			rr := resp.(node.RowsResult)
			var rows []storage.RowID
			for i, tup := range rr.Tuples {
				if c.part.NodeFor(tup[partIdx]) != n {
					rows = append(rows, rr.Rows[i])
				}
			}
			if len(rows) == 0 {
				continue
			}
			if _, err := call(n, node.DeleteRows{Frag: frag, Rows: rows}); err != nil {
				return err
			}
		}
		return nil
	}
	for _, tn := range c.cat.Tables() {
		t, err := c.cat.Table(tn)
		if err != nil {
			return err
		}
		if err := scrubFrag(tn, t.Schema.MustColIndex(t.PartitionCol)); err != nil {
			return err
		}
		for _, ar := range c.cat.AuxRelsFor(tn) {
			if err := scrubFrag(ar.Name, ar.Schema.MustColIndex(ar.PartitionCol)); err != nil {
				return err
			}
		}
		for _, gi := range c.cat.GlobalIndexesFor(tn) {
			for n := 0; n < c.NumNodes(); n++ {
				resp, err := call(n, node.GIScan{GI: gi.Name})
				if err != nil {
					return err
				}
				sc := resp.(node.GIScanResult)
				var vals []types.Value
				var gs []storage.GlobalRowID
				for i, v := range sc.Vals {
					if c.part.NodeFor(v) != n {
						vals = append(vals, v)
						gs = append(gs, sc.Gs[i])
					}
				}
				if len(vals) == 0 {
					continue
				}
				if _, err := call(n, node.GIDeleteBatch{GI: gi.Name, Vals: vals, Gs: gs}); err != nil {
					return err
				}
			}
		}
	}
	for _, vn := range c.cat.Views() {
		v, err := c.cat.View(vn)
		if err != nil {
			return err
		}
		if err := scrubFrag(vn, v.Schema.MustColIndex(v.PartitionQualified())); err != nil {
			return err
		}
	}
	return nil
}

// giFixup deletes (insert=false) or inserts (insert=true) the
// global-index entries for the given base rows at each value's target-map
// home.
func (c *Cluster) giFixup(m *migration, gis []*catalog.GlobalIndex, t *catalog.Table, at int, rows []storage.RowID, tuples []types.Tuple, insert bool) error {
	for _, gi := range gis {
		ci := t.Schema.MustColIndex(gi.Col)
		type batch struct {
			vals []types.Value
			gs   []storage.GlobalRowID
		}
		byHome := map[int]*batch{}
		for i, tup := range tuples {
			v := tup[ci]
			home := m.target.NodeFor(v)
			b := byHome[home]
			if b == nil {
				b = &batch{}
				byHome[home] = b
			}
			b.vals = append(b.vals, v)
			b.gs = append(b.gs, storage.GlobalRowID{Node: int32(at), Row: rows[i]})
		}
		for home, b := range byHome {
			var req any
			if insert {
				req = node.GIInsertBatch{GI: gi.Name, Vals: b.vals, Gs: b.gs}
			} else {
				req = node.GIDeleteBatch{GI: gi.Name, Vals: b.vals, Gs: b.gs}
			}
			if _, err := c.migCall(m, home, req); err != nil {
				return err
			}
		}
	}
	return nil
}

// abortMigration rolls a failed migration back presumed-abort style:
// before the commit point the sources stay authoritative, so aborting
// scrubs the destination-side residue (staging fragments, plus — if the
// cutover's additive apply began — rows merged into real fragments and
// global indexes, repaired by rebuild). A coordinator failure injected at
// a phase boundary (fault.ErrPhaseFail) skips the rollback — exactly what
// a dead coordinator would leave behind — and ResumeMigrations performs
// it from the WAL manifest instead. The same happens if the rollback
// itself fails (a node is down): the migration stays undecided in the log
// until ResumeMigrations succeeds.
func (c *Cluster) abortMigration(m *migration, cause error) {
	c.finishMigration(m)
	if errors.Is(cause, fault.ErrPhaseFail) {
		return
	}
	h := c.lockGlobal()
	defer h.Release()
	if err := c.rollbackLocked(m.moves, m.staging, m.reachedCutover()); err != nil {
		return
	}
	c.migLog(migAbortRec{ID: m.id}, true)
}

// rollbackLocked undoes an uncommitted migration's destination-side work:
// drop staging, delete any rows the cutover's additive apply merged into
// real destination fragments (identified by their migrating hash slot —
// under the still-installed routing map those rows belong at the source,
// which still has them), and, when the cutover began, rebuild every
// global-index fragment from the base tables (entry fixups are the one
// pre-commit mutation with no cheap inverse). Caller holds the global
// lock.
func (c *Cluster) rollbackLocked(moves map[int]migMove, staging []migStaging, cutoverBegan bool) error {
	if cutoverBegan {
		routing := c.part.Map()
		dsts := map[int]bool{}
		for _, mv := range moves {
			dsts[mv.Dst] = true
		}
		scrubFrag := func(frag string, partIdx int) error {
			for d := range dsts {
				resp, err := c.rawCall(d, node.ScanWithRows{Frag: frag})
				if err != nil {
					return err
				}
				rr := resp.(node.RowsResult)
				var rows []storage.RowID
				for i, tup := range rr.Tuples {
					if _, mig := moves[routing.Slot(tup[partIdx])]; mig {
						rows = append(rows, rr.Rows[i])
					}
				}
				if len(rows) == 0 {
					continue
				}
				if _, err := c.rawCall(d, node.DeleteRows{Frag: frag, Rows: rows}); err != nil {
					return err
				}
			}
			return nil
		}
		for _, tn := range c.cat.Tables() {
			t, err := c.cat.Table(tn)
			if err != nil {
				return err
			}
			if err := scrubFrag(tn, t.Schema.MustColIndex(t.PartitionCol)); err != nil {
				return err
			}
			for _, ar := range c.cat.AuxRelsFor(tn) {
				if err := scrubFrag(ar.Name, ar.Schema.MustColIndex(ar.PartitionCol)); err != nil {
					return err
				}
			}
		}
		for _, vn := range c.cat.Views() {
			v, err := c.cat.View(vn)
			if err != nil {
				return err
			}
			if err := scrubFrag(vn, v.Schema.MustColIndex(v.PartitionQualified())); err != nil {
				return err
			}
		}
		for _, tn := range c.cat.Tables() {
			t, err := c.cat.Table(tn)
			if err != nil {
				return err
			}
			for _, gi := range c.cat.GlobalIndexesFor(tn) {
				for n := 0; n < c.NumNodes(); n++ {
					if _, err := c.rebuildGIFrag(gi.Name, gi.Col, gi.DistClustered, t, n); err != nil {
						return err
					}
				}
			}
		}
	}
	return c.dropStagingStrict(staging)
}

// dropStaging removes staging fragments, tolerating unreachable nodes and
// fragments that were never created (cleanup is idempotent).
func (c *Cluster) dropStaging(staging []migStaging) {
	for _, st := range staging {
		var req any = node.DropFragment{Name: st.Name}
		if st.GI {
			req = node.DropGlobalIndexFrag{Name: st.Name}
		}
		_, _ = c.rawCall(st.Node, req)
	}
}

// dropStagingStrict removes staging fragments, reporting unreachable
// nodes (so an abort with a dead destination stays undecided for
// ResumeMigrations) while tolerating never-created fragments.
func (c *Cluster) dropStagingStrict(staging []migStaging) error {
	var firstErr error
	for _, st := range staging {
		var req any = node.DropFragment{Name: st.Name}
		if st.GI {
			req = node.DropGlobalIndexFrag{Name: st.Name}
		}
		if _, err := c.rawCall(st.Node, req); err != nil && !isUnknownFrag(err) && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// isUnknownFrag reports whether an error is a drop of a fragment that was
// never created (an expected case when cleaning up an early abort).
func isUnknownFrag(err error) bool {
	s := err.Error()
	return strings.Contains(s, "unknown fragment") || strings.Contains(s, "unknown global index") ||
		strings.Contains(s, "no fragment") || strings.Contains(s, "no global index") ||
		strings.Contains(s, "not found")
}

// ResumeMigrations recovers the elasticity state after a coordinator
// failure: every migration in the WAL is driven to a decision.
//
//   - commit + cleanup records: finished, nothing to do.
//   - commit without cleanup: the target map is installed but stale source
//     copies may remain — roll forward by re-running the (idempotent)
//     misplaced-row scrub and dropping staging.
//   - start without commit: presumed abort — roll back destination-side
//     residue and drop the staging fragments named in the start record's
//     manifest.
//
// Call it after recovering crashed nodes; it needs every node reachable.
func (c *Cluster) ResumeMigrations() error {
	h := c.lockGlobal()
	defer h.Release()
	return c.resumeMigrationsLocked()
}

// resumeMigrationsLocked is ResumeMigrations with the global lock already
// held — recovery calls it before rebuilding derived fragments, which
// must not run while base tables still hold a dead migration's stale
// copies.
func (c *Cluster) resumeMigrationsLocked() error {
	// Whatever in-memory migration state survived the failure is stale.
	c.migMu.Lock()
	if c.mig != nil {
		c.mig.mu.Lock()
		c.mig.stopped = true
		c.mig.mu.Unlock()
		c.mig = nil
	}
	c.migMu.Unlock()

	committed := map[uint64]bool{}
	cleaned := map[uint64]bool{}
	aborted := map[uint64]bool{}
	lastPhase := map[uint64]string{}
	var starts []migStartRec
	for _, rec := range c.coordLog.All() {
		switch r := rec.Req.(type) {
		case migCommitRec:
			committed[r.ID] = true
		case migCleanupRec:
			cleaned[r.ID] = true
		case migAbortRec:
			aborted[r.ID] = true
		case migPhaseRec:
			lastPhase[r.ID] = r.Phase
		case migStartRec:
			starts = append(starts, r)
		}
	}
	for _, start := range starts {
		switch {
		case aborted[start.ID] || (committed[start.ID] && cleaned[start.ID]):
			continue
		case committed[start.ID]:
			if err := c.scrubMisplaced(nil); err != nil {
				return fmt.Errorf("%w %d: roll-forward cleanup: %w", ErrMigration, start.ID, err)
			}
			if err := c.dropStagingStrict(start.Staging); err != nil {
				return fmt.Errorf("%w %d: roll-forward cleanup: %w", ErrMigration, start.ID, err)
			}
			c.migLog(migCleanupRec{ID: start.ID}, true)
		default:
			phase := lastPhase[start.ID]
			cutoverBegan := phase == "cutover" || phase == "cleanup"
			if err := c.rollbackLocked(start.Moves, start.Staging, cutoverBegan); err != nil {
				return fmt.Errorf("%w %d: rollback: %w", ErrMigration, start.ID, err)
			}
			c.migLog(migAbortRec{ID: start.ID}, true)
		}
	}
	return nil
}
