package cluster

import (
	"sync"
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/expr"
	"joinview/internal/node"
	"joinview/internal/storage"
	"joinview/internal/types"
)

func TestStorageReport(t *testing.T) {
	c := newTPCR(t, 4, 10, 2, 2)
	if err := c.CreateView(jv1Def("jv1", catalog.StrategyAuxRel)); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateGlobalIndex(&catalog.GlobalIndex{Name: "gi_orders_cust", Table: "orders", Col: "custkey"}); err != nil {
		t.Fatal(err)
	}
	rep, err := c.StorageReport()
	if err != nil {
		t.Fatal(err)
	}
	// customer(10), orders(20), lineitem(40), ar_orders_custkey(20),
	// gi_orders_cust(20), jv1(20).
	if got := rep.RowsOf("orders"); got != 20 {
		t.Errorf("orders rows = %d", got)
	}
	if got := rep.RowsOf("ar_orders_custkey"); got != 20 {
		t.Errorf("AR rows = %d", got)
	}
	if got := rep.RowsOf("gi_orders_cust"); got != 20 {
		t.Errorf("GI rows = %d", got)
	}
	if got := rep.RowsOf("jv1"); got != 20 {
		t.Errorf("view rows = %d", got)
	}
	if got := rep.RowsOf("ghost"); got != -1 {
		t.Errorf("missing entry = %d, want -1", got)
	}
	// Overhead = AR + GI rows = 40.
	if got := rep.Overhead(); got != 40 {
		t.Errorf("overhead = %d, want 40", got)
	}
	// Kinds recorded.
	kinds := map[string]string{}
	for _, e := range rep.Entries {
		kinds[e.Name] = e.Kind
	}
	if kinds["orders"] != "table" || kinds["jv1"] != "view" || kinds["ar_orders_custkey"] != "auxrel" || kinds["gi_orders_cust"] != "globalindex" {
		t.Errorf("kinds = %v", kinds)
	}
}

// The paper's §2.1.2 storage-minimization claim: a projected AR stores
// fewer columns (and with a selection, fewer rows) than a full copy, while
// maintenance stays correct.
func TestMinimizedAuxRelStorageAndMaintenance(t *testing.T) {
	c := newTPCR(t, 4, 8, 2, 1)
	ar := &catalog.AuxRel{
		Name:         "orders_slim",
		Table:        "orders",
		PartitionCol: "custkey",
		Cols:         []string{"orderkey", "custkey"},
		Where:        expr.Cmp{Op: expr.GE, L: expr.Col{Name: "orderkey"}, R: expr.Const{V: types.Int(5)}},
	}
	if err := c.CreateAuxRel(ar); err != nil {
		t.Fatal(err)
	}
	rep, err := c.StorageReport()
	if err != nil {
		t.Fatal(err)
	}
	full := rep.RowsOf("orders")
	slim := rep.RowsOf("orders_slim")
	if slim >= full {
		t.Errorf("selective AR should be smaller: %d vs %d", slim, full)
	}
	if err := c.CheckAuxRelConsistency("orders_slim"); err != nil {
		t.Fatal(err)
	}
	// Inserts and deletes flow through the minimized AR.
	if err := c.Insert("orders", []types.Tuple{ord(100, 3, 1), ord(2, 3, 1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete("orders", expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "orderkey"}, R: expr.Const{V: types.Int(7)}}); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckAuxRelConsistency("orders_slim"); err != nil {
		t.Fatal(err)
	}
}

func TestCheckAllStructuresAfterStream(t *testing.T) {
	c := newTPCR(t, 4, 8, 2, 2)
	// One view per strategy so ARs and GIs both exist.
	if err := c.CreateView(jv1Def("v_ar", catalog.StrategyAuxRel)); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateView(jv2Def("v_gi", catalog.StrategyGlobalIndex)); err != nil {
		t.Fatal(err)
	}
	rng := newRand(11)
	for i := 0; i < 30; i++ {
		switch rng.Intn(4) {
		case 0:
			noErr(t, c.Insert("orders", []types.Tuple{ord(int64(500+i), int64(rng.Intn(12)), 1)}))
		case 1:
			noErr(t, c.Insert("lineitem", []types.Tuple{li(int64(rng.Intn(20)), int64(700+i), 1)}))
		case 2:
			_, err := c.Delete("orders", expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "orderkey"}, R: expr.Const{V: types.Int(int64(rng.Intn(20)))}})
			noErr(t, err)
		case 3:
			_, err := c.Update("orders", map[string]types.Value{"custkey": types.Int(int64(rng.Intn(8)))},
				expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "orderkey"}, R: expr.Const{V: types.Int(int64(rng.Intn(25)))}})
			noErr(t, err)
		}
	}
	if err := c.CheckAllStructures(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckersCatchCorruption(t *testing.T) {
	c := newTPCR(t, 2, 4, 1, 1)
	if err := c.CreateView(jv1Def("jv1", catalog.StrategyAuxRel)); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateGlobalIndex(&catalog.GlobalIndex{Name: "gi_oc", Table: "orders", Col: "custkey"}); err != nil {
		t.Fatal(err)
	}
	// Sanity: everything consistent first.
	if err := c.CheckAllStructures(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the AR behind the cluster's back: insert a phantom tuple
	// directly into one node's fragment.
	ar, _ := c.cat.AuxRel("ar_orders_custkey")
	phantom := types.Tuple{types.Int(999), types.Int(999), types.Float(0)}
	home := c.part.NodeFor(types.Int(999))
	if _, err := c.call(home, node.Insert{Frag: ar.Name, Tuples: []types.Tuple{phantom}}); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckAuxRelConsistency("ar_orders_custkey"); err == nil {
		t.Error("checker should catch a phantom AR tuple")
	}
	// Corrupt the GI: dangling entry.
	giHome := c.part.NodeFor(types.Int(555))
	if _, err := c.call(giHome, node.GIInsert{GI: "gi_oc", Val: types.Int(555), G: storage.GlobalRowID{Node: 63, Row: 1234}}); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckGlobalIndexConsistency("gi_oc"); err == nil {
		t.Error("checker should catch a dangling GI entry")
	}
	// Checker errors for unknown structures.
	if err := c.CheckAuxRelConsistency("ghost"); err == nil {
		t.Error("missing AR should fail")
	}
	if err := c.CheckGlobalIndexConsistency("ghost"); err == nil {
		t.Error("missing GI should fail")
	}
}

// Two views over the same tables share one covering auxiliary relation
// (§2.1.2's redundancy discussion): EnsureStructures must not duplicate.
func TestViewsShareAuxRels(t *testing.T) {
	c := newTPCR(t, 4, 8, 2, 1)
	v1 := jv1Def("v1", catalog.StrategyAuxRel)
	if err := c.CreateView(v1); err != nil {
		t.Fatal(err)
	}
	before := len(c.cat.AuxRelsFor("orders"))
	// A second view with the same join needing a subset of v1's columns.
	v2 := jv1Def("v2", catalog.StrategyAuxRel)
	v2.Out = v2.Out[:3] // customer.custkey, customer.acctbal, orders.orderkey
	if err := c.CreateView(v2); err != nil {
		t.Fatal(err)
	}
	after := len(c.cat.AuxRelsFor("orders"))
	if after != before {
		t.Errorf("second view created %d extra ARs; should reuse the covering one", after-before)
	}
	// Both views maintain through the shared AR.
	if err := c.Insert("customer", []types.Tuple{cust(3, 0)}); err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"v1", "v2"} {
		if err := c.CheckViewConsistency(v); err != nil {
			t.Errorf("%s: %v", v, err)
		}
	}
}

// Two views needing different column coverage on the same (table, join
// attribute) must get separate auxiliary relations under distinct names
// (the §2.1.2 AR_A1/AR_A2 redundancy case).
func TestViewsWithDifferentCoverageGetSeparateARs(t *testing.T) {
	c := newTPCR(t, 4, 6, 2, 1)
	// Narrow first: only custkey flows to the view from orders' side.
	narrow := &catalog.View{
		Name:   "narrow",
		Tables: []string{"customer", "orders"},
		Joins: []catalog.JoinPred{
			{Left: "customer", LeftCol: "custkey", Right: "orders", RightCol: "custkey"},
		},
		Out:            []catalog.OutCol{{Table: "customer", Col: "custkey"}},
		Aggs:           []catalog.AggSpec{{Func: "count"}},
		PartitionTable: "customer", PartitionCol: "custkey",
		Strategy: catalog.StrategyAuxRel,
	}
	if err := c.CreateView(narrow); err != nil {
		t.Fatal(err)
	}
	// Wide second: needs orderkey and totalprice too.
	if err := c.CreateView(jv1Def("wide", catalog.StrategyAuxRel)); err != nil {
		t.Fatal(err)
	}
	ars := c.cat.AuxRelsFor("orders")
	if len(ars) != 2 {
		t.Fatalf("expected 2 ARs, got %v", ars)
	}
	// Both views stay maintainable and consistent.
	noErr(t, c.Insert("customer", []types.Tuple{cust(3, 0)}))
	noErr(t, c.Insert("orders", []types.Tuple{ord(700, 3, 9)}))
	for _, vn := range []string{"narrow", "wide"} {
		if err := c.CheckViewConsistency(vn); err != nil {
			t.Errorf("%s: %v", vn, err)
		}
	}
	if err := c.CheckAllStructures(); err != nil {
		t.Fatal(err)
	}
}

// Concurrent DML streams under the channel transport: the coordinator
// serializes statements, nodes run in parallel, and every structure stays
// consistent.
func TestConcurrentStreamsChannelTransport(t *testing.T) {
	c, err := New(Config{Nodes: 4, UseChannels: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, tab := range []*catalog.Table{customerTable(), ordersTable()} {
		if err := c.CreateTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	var orders []types.Tuple
	for i := int64(0); i < 30; i++ {
		orders = append(orders, ord(i, i%10, 1))
	}
	if err := c.Insert("orders", orders); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateView(jv1Def("jv1", catalog.StrategyAuxRel)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				ck := int64(g*100 + i)
				if err := c.Insert("customer", []types.Tuple{cust(ck%12, 1)}); err != nil {
					errs <- err
					return
				}
				if i%3 == 0 {
					if _, err := c.Delete("customer", expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "custkey"}, R: expr.Const{V: types.Int(ck % 12)}}); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := c.CheckAllStructures(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAll(t *testing.T) {
	c := newTPCR(t, 2, 4, 1, 1)
	if err := c.CreateView(jv1Def("jv1", catalog.StrategyAuxRel)); err != nil {
		t.Fatal(err)
	}
	n, err := c.DeleteAll("customer")
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("DeleteAll removed %d, want 4", n)
	}
	rows, _ := c.ViewRows("jv1")
	if len(rows) != 0 {
		t.Errorf("view should be empty, has %d rows", len(rows))
	}
	if err := c.CheckAllStructures(); err != nil {
		t.Fatal(err)
	}
}
