package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"joinview/internal/catalog"
	"joinview/internal/fault"
	"joinview/internal/types"
)

// newAsyncChaosCluster builds a loaded 4-node async-maintenance cluster
// on the chosen transport, wrapped in the (disarmed) injector, with a jv1
// view under the given strategy. No background flusher: the tests drive
// epochs explicitly so every phase boundary is deterministic.
func newAsyncChaosCluster(t *testing.T, inj *fault.Injector, strat catalog.Strategy, useChan bool) *Cluster {
	t.Helper()
	c, err := New(Config{Nodes: 4, Faults: inj, RetryAttempts: 3, UseChannels: useChan, AsyncMaintenance: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for _, tab := range []*catalog.Table{customerTable(), ordersTable(), lineitemTable()} {
		if err := c.CreateTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	var customers, orders []types.Tuple
	ok := int64(0)
	for ck := int64(0); ck < 8; ck++ {
		customers = append(customers, cust(ck, float64(ck)*1.5))
		for o := 0; o < 2; o++ {
			ok++
			orders = append(orders, ord(ok, ck, float64(ok)*10))
		}
	}
	if err := c.Insert("customer", customers); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("orders", orders); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"customer", "orders", "lineitem"} {
		if err := c.RefreshStats(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateView(jv1Def("jv1", strat)); err != nil {
		t.Fatal(err)
	}
	return c
}

// healAsync ends an async-flush fault episode: restart crashed nodes,
// run coordinator recovery for anything degraded, roll the interrupted
// epoch forward, then drain whatever is still pending.
func healAsync(t *testing.T, c *Cluster, inj *fault.Injector) {
	t.Helper()
	for _, n := range inj.DownNodes() {
		inj.Restart(n)
	}
	for _, n := range c.Degraded() {
		if err := c.Recover(n); err != nil {
			t.Fatalf("recover node %d: %v", n, err)
		}
	}
	if err := c.ResumeMaintenance(); err != nil {
		t.Fatalf("ResumeMaintenance: %v", err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("post-heal flush: %v", err)
	}
}

// TestAsyncChaosMatrix injects a coordinator failure or a node crash at
// each flush-phase boundary — enqueue, compact, flush, ack — under every
// maintenance strategy on both transports. Whatever the interruption, a
// heal (restart + recovery + ResumeMaintenance + Flush) must leave the
// stored state exactly the successful statements' mirror, with the view
// equal to a recomputed join: an enqueued delta is never lost and never
// applied twice.
func TestAsyncChaosMatrix(t *testing.T) {
	phases := []string{"enqueue", "compact", "flush", "ack"}
	victims := []string{"coordinator", "node"}
	for _, strat := range allStrategies {
		for _, useChan := range []bool{false, true} {
			transport := "direct"
			if useChan {
				transport = "chan"
			}
			for _, phase := range phases {
				for _, victim := range victims {
					strat, useChan, phase, victim := strat, useChan, phase, victim
					name := fmt.Sprintf("%s/%s/%s/%s", strat, transport, phase, victim)
					t.Run(name, func(t *testing.T) {
						runAsyncChaos(t, strat, useChan, phase, victim)
					})
				}
			}
		}
	}
}

func runAsyncChaos(t *testing.T, strat catalog.Strategy, useChan bool, phase, victim string) {
	inj := fault.New(fault.Config{Seed: 131})
	c := newAsyncChaosCluster(t, inj, strat, useChan)

	// Committed-statement mirror of the orders table: every statement that
	// returns success must be durable across the chaos, every failed one
	// must leave no trace.
	mirror := map[int64]types.Tuple{}
	rows, err := c.TableRows("orders")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		mirror[r[0].I] = r
	}

	apply := func(step string, key int64, del bool) {
		t.Helper()
		if del {
			got, err := c.Delete("orders", eqOrderKey(key))
			if err != nil {
				t.Logf("%s: delete %d interrupted: %v", step, key, err)
				return
			}
			if len(got) > 0 {
				delete(mirror, key)
			}
			return
		}
		tup := ord(key, key%8, float64(key))
		if err := c.Insert("orders", []types.Tuple{tup}); err != nil {
			t.Logf("%s: insert %d interrupted: %v", step, key, err)
			return
		}
		mirror[key] = tup
	}

	// A couple of deferred statements before the trigger arms, so the
	// interrupted epoch carries earlier entries too.
	apply("pre", 600, false)
	apply("pre", 1, true)

	switch victim {
	case "coordinator":
		inj.FailAtPhase(phase)
	case "node":
		inj.CrashAtPhase(phase, 1)
	}

	// Statements under the armed trigger: an "enqueue" trigger interrupts
	// one of these; the flush-side triggers interrupt the Flush below.
	apply("armed", 601, false)
	apply("armed", 602, false)
	apply("armed", 2, true)

	if err := c.Flush(); err != nil {
		t.Logf("interrupted flush: %v", err)
	}

	healAsync(t, c, inj)

	if w := c.Watermark(); w.Pending != 0 {
		t.Fatalf("queue not drained after heal: %+v", w)
	}
	got, err := c.TableRows("orders")
	if err != nil {
		t.Fatal(err)
	}
	want := make([]types.Tuple, 0, len(mirror))
	for _, tup := range mirror {
		want = append(want, tup)
	}
	assertBagEqual(t, "orders after async chaos", got, want)
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatalf("view after async chaos: %v", err)
	}
	if err := c.CheckAllStructures(); err != nil {
		t.Fatalf("structures after async chaos: %v", err)
	}

	// The cluster is fully operational: another deferred write flushes
	// cleanly.
	apply("post", 700, false)
	if err := c.Flush(); err != nil {
		t.Fatalf("post-chaos flush: %v", err)
	}
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatalf("view after post-chaos DML: %v", err)
	}
}

// TestAsyncOverlayInflightNoDoubleCount: the entries of an in-flight
// epoch stay in the pending queue until the epoch's done record, so a
// victim scan during that window sees them twice if the overlay is
// naive — once through the run's entry snapshot (or the applied base
// state, if the table's groups committed) and once through the raw
// pending list. A delete resolving phantom duplicate victims enqueues
// more removals than instances exist, and every later flush dies in
// locateTuples, wedging the queue. A flush interrupted at "flush"
// (groups unapplied) and at "ack" (groups applied, done record missing)
// covers both arms.
func TestAsyncOverlayInflightNoDoubleCount(t *testing.T) {
	for _, phase := range []string{"flush", "ack"} {
		phase := phase
		t.Run(phase, func(t *testing.T) {
			inj := fault.New(fault.Config{Seed: 17})
			c := newAsyncChaosCluster(t, inj, catalog.StrategyAuto, false)
			if err := c.Insert("orders", []types.Tuple{ord(700, 3, 1)}); err != nil {
				t.Fatal(err)
			}
			inj.FailAtPhase(phase)
			if err := c.Flush(); err == nil {
				t.Fatalf("flush was not interrupted at %q", phase)
			}
			deleted, err := c.Delete("orders", eqOrderKey(700))
			if err != nil {
				t.Fatal(err)
			}
			if len(deleted) != 1 {
				t.Fatalf("delete during in-flight epoch found %d victims, want 1", len(deleted))
			}
			if err := c.Flush(); err != nil {
				t.Fatalf("flush after in-flight delete: %v", err)
			}
			if w := c.Watermark(); w.Pending != 0 {
				t.Fatalf("queue wedged: %+v", w)
			}
			if err := c.CheckViewConsistency("jv1"); err != nil {
				t.Fatal(err)
			}
			rows, err := c.TableRows("orders")
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rows {
				if r[0].I == 700 {
					t.Fatal("deleted order 700 still stored")
				}
			}
		})
	}
}

// TestAsyncOverloadBlockFlushFailure: with OverloadBlock and a
// background flusher, a persistently failing flush (a crashed node)
// must not trap blocked writers in a hot retry cycle with the flusher.
// The writer gets the flush failure back, wrapped in ErrOverload; after
// the node recovers and the queue drains, writes go through again.
func TestAsyncOverloadBlockFlushFailure(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 23})
	c, err := New(Config{Nodes: 4, Faults: inj, AsyncMaintenance: true,
		EpochSize: 2, MaxQueueDepth: 2, OverloadBlock: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for _, tab := range []*catalog.Table{customerTable(), ordersTable(), lineitemTable()} {
		if err := c.CreateTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	var customers []types.Tuple
	for ck := int64(0); ck < 8; ck++ {
		customers = append(customers, cust(ck, float64(ck)))
	}
	if err := c.Insert("customer", customers); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"customer", "orders"} {
		if err := c.RefreshStats(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateView(jv1Def("jv1", catalog.StrategyAuto)); err != nil {
		t.Fatal(err)
	}

	// Fail the next flush attempt at its phase boundary: the background
	// flusher (woken at EpochSize=2) errors and parks the failure in
	// lastErr, leaving the queue at its depth bound.
	inj.FailAtPhase("flush")
	for i := int64(0); i < 2; i++ {
		if err := c.Insert("orders", []types.Tuple{ord(750+i, i, 1)}); err != nil {
			t.Fatalf("writer %d under failing flush: %v", i, err)
		}
	}
	// The queue is full and not draining: the next writer must return
	// the wrapped failure in bounded time, not block forever re-waking
	// the flusher into a hot retry cycle.
	errc := make(chan error, 1)
	go func() { errc <- c.Insert("orders", []types.Tuple{ord(760, 3, 1)}) }()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrOverload) {
			t.Fatalf("blocked writer got %v, want ErrOverload-wrapped flush failure", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("blocked writer hung under a persistently failing flush")
	}

	// Heal: the trigger is spent, so a flush drains the interrupted
	// epoch and the shed write retries cleanly.
	if err := c.ResumeMaintenance(); err != nil {
		t.Fatalf("ResumeMaintenance: %v", err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("post-heal flush: %v", err)
	}
	if err := c.Insert("orders", []types.Tuple{ord(760, 3, 1)}); err != nil {
		t.Fatalf("retry after heal: %v", err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncDurableRecoveryKeepsEnqueueAge: rebuilding the queue from the
// coordinator log must restore each entry's original enqueue time, so
// Watermark.Lag (and MaxStaleness admission) measure from the enqueue,
// not from the restart.
func TestAsyncDurableRecoveryKeepsEnqueueAge(t *testing.T) {
	c, err := New(Config{Nodes: 4, Durability: true, AsyncMaintenance: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.CreateTable(ordersTable()); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("orders", []types.Tuple{ord(1, 1, 1)}); err != nil {
		t.Fatal(err)
	}
	const age = 30 * time.Millisecond
	time.Sleep(age)
	// ResumeMaintenance rebuilds the pending queue purely from the log —
	// the coordinator-restart path.
	if err := c.ResumeMaintenance(); err != nil {
		t.Fatal(err)
	}
	w := c.Watermark()
	if w.Pending != 1 {
		t.Fatalf("rebuild lost entries: %+v", w)
	}
	if w.Lag < age {
		t.Fatalf("Lag = %v after rebuild, want >= %v (enqueue age reset)", w.Lag, age)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncDurableKillRestart runs the queue against the durable (WAL +
// 2PC) cluster through a kill-restart storm at flush boundaries: nodes
// fail-stop and lose volatile state, the coordinator "dies" at phase
// boundaries after its plan or group-commit records are forced, and
// ResumeMaintenance must rebuild the queue from the log and roll the
// interrupted epoch forward — re-applying exactly the groups without a
// tagged commit record.
func TestAsyncDurableKillRestart(t *testing.T) {
	for _, strat := range allStrategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			inj := fault.New(fault.Config{Seed: 59})
			c, err := New(Config{Nodes: 4, Faults: inj, RetryAttempts: 4, Durability: true, AsyncMaintenance: true})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(c.Close)
			for _, tab := range []*catalog.Table{customerTable(), ordersTable(), lineitemTable()} {
				if err := c.CreateTable(tab); err != nil {
					t.Fatal(err)
				}
			}
			var customers, orders []types.Tuple
			ok := int64(0)
			for ck := int64(0); ck < 6; ck++ {
				customers = append(customers, cust(ck, float64(ck)*1.5))
				for o := 0; o < 2; o++ {
					ok++
					orders = append(orders, ord(ok, ck, float64(ok)*10))
				}
			}
			if err := c.Insert("customer", customers); err != nil {
				t.Fatal(err)
			}
			if err := c.Insert("orders", orders); err != nil {
				t.Fatal(err)
			}
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			for _, name := range []string{"customer", "orders", "lineitem"} {
				if err := c.RefreshStats(name); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.CreateView(jv1Def("jv1", strat)); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Checkpoint(); err != nil {
				t.Fatal(err)
			}

			// Round 1: a node fail-stops at the first group's apply. The
			// epoch plan is already forced; recovery must re-run exactly
			// the unapplied groups. Two tables are queued so the epoch has
			// two groups.
			if err := c.Insert("customer", []types.Tuple{cust(50, 1)}); err != nil {
				t.Fatal(err)
			}
			if err := c.Insert("orders", []types.Tuple{ord(500, 50, 5), ord(501, 3, 6)}); err != nil {
				t.Fatal(err)
			}
			inj.CrashAtPhase("flush", 1)
			if err := c.Flush(); err != nil {
				t.Logf("round 1 interrupted: %v", err)
			}
			recoverAllDurable(t, c, inj)
			if err := c.ResumeMaintenance(); err != nil {
				t.Fatalf("resume after round 1: %v", err)
			}
			if w := c.Watermark(); w.Pending != 0 {
				t.Fatalf("round 1 left pending: %+v", w)
			}
			if err := c.CheckViewConsistency("jv1"); err != nil {
				t.Fatalf("round 1: %v", err)
			}
			assertNoInDoubt(t, c)

			// Round 2: the coordinator dies between the last group's
			// tagged commit and the epoch-done record ("ack"). Recovery
			// finds every group committed and must not re-apply any.
			if err := c.Insert("orders", []types.Tuple{ord(510, 4, 1)}); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Delete("orders", eqOrderKey(1)); err != nil {
				t.Fatal(err)
			}
			inj.FailAtPhase("ack")
			if err := c.Flush(); err != nil {
				t.Logf("round 2 interrupted: %v", err)
			}
			if err := c.ResumeMaintenance(); err != nil {
				t.Fatalf("resume after round 2: %v", err)
			}
			if err := c.CheckViewConsistency("jv1"); err != nil {
				t.Fatalf("round 2 (double apply?): %v", err)
			}

			// Round 3: the coordinator dies before the epoch plan is
			// durable ("compact"): only the enqueue records exist.
			// Recovery rebuilds the pending queue from them and a clean
			// flush applies everything once.
			if err := c.Insert("orders", []types.Tuple{ord(520, 5, 2)}); err != nil {
				t.Fatal(err)
			}
			inj.FailAtPhase("compact")
			if err := c.Flush(); err != nil {
				t.Logf("round 3 interrupted: %v", err)
			}
			if err := c.ResumeMaintenance(); err != nil {
				t.Fatalf("resume after round 3: %v", err)
			}
			if err := c.Flush(); err != nil {
				t.Fatalf("final flush: %v", err)
			}
			if w := c.Watermark(); w.Pending != 0 {
				t.Fatalf("final state left pending: %+v", w)
			}
			if err := c.CheckViewConsistency("jv1"); err != nil {
				t.Fatal(err)
			}
			if err := c.CheckAllStructures(); err != nil {
				t.Fatal(err)
			}
			assertNoInDoubt(t, c)

			rows, err := c.TableRows("orders")
			if err != nil {
				t.Fatal(err)
			}
			saw := map[int64]bool{}
			count := map[int64]int{}
			for _, r := range rows {
				saw[r[0].I] = true
				count[r[0].I]++
			}
			for _, k := range []int64{500, 501, 510, 520} {
				if !saw[k] {
					t.Errorf("enqueued order %d lost across the storm", k)
				}
				if count[k] > 1 {
					t.Errorf("order %d applied %d times", k, count[k])
				}
			}
			if saw[1] {
				t.Error("deleted order 1 resurrected")
			}
		})
	}
}
