package cluster

import (
	"fmt"

	"joinview/internal/catalog"
	"joinview/internal/fault"
	"joinview/internal/maintain"
	"joinview/internal/mplan"
	"joinview/internal/netsim"
	"joinview/internal/node"
	"joinview/internal/storage"
	"joinview/internal/txn"
	"joinview/internal/types"
)

// This file is the compile-once, execute-many write path. Every DML
// statement resolves a compiled maintenance plan (internal/mplan) from the
// cluster's plan cache and runs it through execPlan, which walks the
// plan's stages — base mutation, auxiliary relations, global indexes,
// view propagation — under the cross-cutting machinery that already wraps
// every statement: the scatter-gather dispatcher, the 2PC/WAL hooks in
// runStmt, the lock claims taken by the callers, retry, and the storage
// meters. The per-strategy step sequencing that used to be hand-rolled
// per entry point lives only here.

// planFor returns the compiled maintenance plan for (table, op),
// consulting the plan cache unless the configuration disables it. Callers
// hold at least the shared global lock, so the catalog cannot move
// underneath the lookup.
func (c *Cluster) planFor(table string, op maintain.Op) (*mplan.Plan, error) {
	if c.cfg.DisablePlanCache {
		c.pstats.RecordLookup(false)
		return mplan.Compile(c.cat, c.st, table, op)
	}
	mp, hit, err := c.mcache.Get(c.cat, c.st, table, op)
	if err != nil {
		c.pstats.RecordLookup(false)
		return nil, err
	}
	c.pstats.RecordLookup(hit)
	return mp, nil
}

// execPlan executes one compiled maintenance plan for a delta of tuples.
// For an insert plan, locs must be nil (the base stage produces them); for
// a delete plan, locs are the victims' storage locations from the caller's
// scan. Every stage registers its compensations on tx, so a failing stage
// leaves runStmt to undo the applied prefix.
//
// When the plan marks shared potential (two or more dependent views whose
// delta-join chains start with a common structural prefix), a shared
// pre-pass runs once before the first view stage: it resolves every view's
// strategy for this statement's delta size and executes each distinct
// chain prefix exactly once, memoized by structural key. The view stages
// then consume the memoized intermediates and only perform their per-view
// tail (residual filter, projection, apply). Plans without shared
// potential — and all plans when the configuration disables sharing —
// take the per-view path unchanged.
func (c *Cluster) execPlan(tx *txn.Txn, mp *mplan.Plan, delta []types.Tuple, locs []located) error {
	// Per-stage page/message attribution needs exclusive ownership of the
	// global meters; only serial execution modes guarantee it. Under
	// parallel dispatch only stage executions are counted.
	attribute := c.serialStmts()
	var before Metrics
	var sx *sharedExec
	sharedDone := false
	for i := range mp.Stages {
		s := &mp.Stages[i]
		if s.Kind == mplan.StageView && !sharedDone {
			sharedDone = true
			if !c.cfg.DisablePlanSharing && mp.SharedPotential {
				// The pre-pass gets its own metrics window so its probes are
				// attributed to "sharedjoin", not folded into the first view
				// stage — keeping per-stage attribution exact in serial mode.
				if attribute {
					before = c.Metrics()
				}
				var err error
				sx, err = c.execSharedJoins(mp, delta)
				if attribute {
					d := c.Metrics().Sub(before)
					c.pstats.RecordStage(sharedStageName, d.Total().IOs(), d.Net.Messages)
				} else {
					c.pstats.RecordStage(sharedStageName, 0, 0)
				}
				if err != nil {
					return err
				}
			}
		}
		if attribute {
			before = c.Metrics()
		}
		var err error
		switch s.Kind {
		case mplan.StageBase:
			if mp.Op == maintain.OpInsert {
				locs, err = c.stageBaseInsert(tx, mp.Table, delta)
			} else {
				err = c.stageBaseDelete(tx, mp.Table, locs)
			}
		case mplan.StageAuxRel:
			err = c.stageAuxRel(tx, mp.Table, s.AR, delta, mp.Op)
		case mplan.StageGlobalIndex:
			err = c.stageGlobalIndex(tx, mp.Table, s.GI, locs, mp.Op)
		case mplan.StageView:
			err = c.stageView(tx, s.View, mp, delta, sx)
		default:
			err = fmt.Errorf("cluster: unknown pipeline stage %v", s.Kind)
		}
		if err != nil {
			return err
		}
		if attribute {
			d := c.Metrics().Sub(before)
			c.pstats.RecordStage(s.Kind.String(), d.Total().IOs(), d.Net.Messages)
		} else {
			c.pstats.RecordStage(s.Kind.String(), 0, 0)
		}
	}
	return nil
}

// sharedStageName is the per-stage metrics label of the shared delta-join
// pre-pass.
const sharedStageName = "sharedjoin"

// sharedResult is one memoized chain-prefix intermediate: the joined
// tuples and their schema.
type sharedResult struct {
	tuples []types.Tuple
	schema *types.Schema
}

// sharedExec carries one statement's resolved shared maintenance DAG: the
// strategy chosen for every view stage and the memoized intermediate of
// every distinct chain prefix, keyed by structural chain key.
type sharedExec struct {
	choice map[*mplan.ViewStage]*mplan.StrategyOption
	memo   map[string]sharedResult
}

// execSharedJoins is the shared delta-join pre-pass: it walks every view
// stage's chosen plan and executes each distinct chain prefix once. Chain
// keys are structural (plan.Step.ChainKey), so two plans whose prefixes
// share a key produce identical intermediates and the second ride is free.
// The probes are pure reads — nothing here registers compensations; all
// mutation (and rollback registration) stays in the per-view apply.
//
// An empty intermediate short-circuits like the per-view path: the
// remaining prefixes are memoized as empty without probing, so the shared
// path performs exactly the probes the unshared path would.
func (c *Cluster) execSharedJoins(mp *mplan.Plan, tuples []types.Tuple) (*sharedExec, error) {
	sx := &sharedExec{
		choice: make(map[*mplan.ViewStage]*mplan.StrategyOption),
		memo:   make(map[string]sharedResult),
	}
	l := c.NumNodes()
	for i := range mp.Stages {
		s := &mp.Stages[i]
		if s.Kind != mplan.StageView {
			continue
		}
		vs := s.View
		opt := vs.Choose(l, len(tuples), mp.ARCount, mp.GICount)
		sx.choice[vs] = opt
		p := opt.Plan
		cur, curSchema := tuples, p.DeltaSchema
		for _, step := range p.Steps {
			if r, ok := sx.memo[step.ChainKey]; ok {
				cur, curSchema = r.tuples, r.schema
				continue
			}
			if len(cur) == 0 {
				curSchema = maintain.StepOutSchema(step, curSchema)
				sx.memo[step.ChainKey] = sharedResult{schema: curSchema}
				continue
			}
			next, _, err := maintain.ExecStep(c.env, step, cur, curSchema, c.cfg.Algo)
			if err != nil {
				return nil, err
			}
			curSchema = maintain.StepOutSchema(step, curSchema)
			cur = next
			sx.memo[step.ChainKey] = sharedResult{tuples: cur, schema: curSchema}
		}
	}
	return sx, nil
}

// stageBaseInsert routes tuples by the partition attribute and stores
// them, returning each tuple's storage location.
func (c *Cluster) stageBaseInsert(tx *txn.Txn, t *catalog.Table, tuples []types.Tuple) ([]located, error) {
	pi := t.Schema.MustColIndex(t.PartitionCol)
	// Two counting passes carve the per-node buckets (tuples and original
	// indexes) out of two exactly-sized backing arrays — no append growth
	// on the hot path.
	homes := make([]int, len(tuples))
	counts := make([]int, c.NumNodes())
	for i, tup := range tuples {
		if err := t.Schema.Validate(tup); err != nil {
			return nil, fmt.Errorf("cluster: insert into %q: %w", t.Name, err)
		}
		n := c.part.NodeFor(tup[pi])
		homes[i] = n
		counts[n]++
	}
	tupleBacking := make([]types.Tuple, len(tuples))
	idxBacking := make([]int, len(tuples))
	bucketTuples := make([][]types.Tuple, c.NumNodes())
	bucketIdx := make([][]int, c.NumNodes())
	off := 0
	for n := 0; n < c.NumNodes(); n++ {
		bucketTuples[n] = tupleBacking[off : off : off+counts[n]]
		bucketIdx[n] = idxBacking[off : off : off+counts[n]]
		off += counts[n]
	}
	for i, tup := range tuples {
		n := homes[i]
		bucketTuples[n] = append(bucketTuples[n], tup)
		bucketIdx[n] = append(bucketIdx[n], i)
	}
	ep, fl := c.writeEpoch(t.Name), c.gcFloorFor(t.Name)
	var calls []netsim.Call
	var dests []int
	for n, bucket := range bucketTuples {
		if len(bucket) == 0 {
			continue
		}
		calls = append(calls, netsim.Call{From: netsim.Coordinator, To: n, Req: node.Insert{Frag: t.Name, Tuples: bucket, Epoch: ep, GCFloor: fl}})
		dests = append(dests, n)
	}
	resps, scErr := c.scatter(calls)
	// Register a compensation for every call that succeeded before
	// reporting any failure: under parallel dispatch, calls after the
	// failed index still ran and their work must roll back too.
	locs := make([]located, len(tuples))
	for ci, resp := range resps {
		if resp == nil {
			continue
		}
		n := dests[ci]
		rows := resp.(node.InsertResult).Rows
		rowsCopy := append([]storage.RowID(nil), rows...)
		tuplesCopy := append([]types.Tuple(nil), bucketTuples[n]...)
		tx.OnRollback(func() error {
			// The undo shares the forward stamp: the statement failed, so
			// the epoch is never published and forward + undo records
			// cancel in every snapshot.
			return c.undoCallRows(n, node.DeleteRows{Frag: t.Name, Rows: rowsCopy, Epoch: ep}, tuplesCopy)
		})
		for bi, row := range rows {
			locs[bucketIdx[n][bi]] = located{node: n, row: row, tuple: bucketTuples[n][bi]}
		}
	}
	if scErr != nil {
		return nil, scErr
	}
	return locs, nil
}

// stageBaseDelete removes the located victims from the base relation: one
// scatter call per node holding victims, in node order (the victim scan
// emits locs node-by-node, so the grouping below is already sorted and the
// dispatch is deterministic).
func (c *Cluster) stageBaseDelete(tx *txn.Txn, t *catalog.Table, locs []located) error {
	byNode := make([][]storage.RowID, c.NumNodes())
	for _, loc := range locs {
		byNode[loc.node] = append(byNode[loc.node], loc.row)
	}
	ep, fl := c.writeEpoch(t.Name), c.gcFloorFor(t.Name)
	var calls []netsim.Call
	var dests []int
	for n, rows := range byNode {
		if len(rows) == 0 {
			continue
		}
		calls = append(calls, netsim.Call{From: netsim.Coordinator, To: n, Req: node.DeleteRows{Frag: t.Name, Rows: rows, Epoch: ep, GCFloor: fl}})
		dests = append(dests, n)
	}
	resps, scErr := c.scatter(calls)
	for ci, resp := range resps {
		if resp == nil {
			continue
		}
		dr := resp.(node.DeleteResult)
		n := dests[ci]
		// Restore at the original row ids: global-index entries reference
		// (node, row) pairs, so a plain re-insert (which allocates fresh
		// ids) would leave every GI entry for these tuples dangling.
		tx.OnRollback(func() error {
			return c.undoCall(n, node.RestoreRows{Frag: t.Name, Rows: dr.Rows, Tuples: dr.Tuples, Epoch: ep})
		})
	}
	return scErr
}

// stageAuxRel propagates the base delta into one auxiliary relation of the
// table. For deletes, victims are matched by value (bag semantics).
func (c *Cluster) stageAuxRel(tx *txn.Txn, t *catalog.Table, ar *catalog.AuxRel, tuples []types.Tuple, op maintain.Op) error {
	projected, err := projectForAuxRel(t, ar, tuples)
	if err != nil {
		return err
	}
	buckets, err := c.part.Spread(ar.Schema, ar.PartitionCol, projected)
	if err != nil {
		return err
	}
	arName := ar.Name
	partCol := ar.PartitionCol
	ep, fl := c.writeEpoch(arName), c.gcFloorFor(arName)
	var calls []netsim.Call
	var dests []int
	for n, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		var req any
		if op == maintain.OpInsert {
			req = node.Insert{Frag: arName, Tuples: bucket, Epoch: ep, GCFloor: fl}
		} else {
			req = node.DeleteMatch{Frag: arName, HintCol: partCol, Tuples: bucket, Epoch: ep, GCFloor: fl}
		}
		calls = append(calls, netsim.Call{From: netsim.Coordinator, To: n, Req: req})
		dests = append(dests, n)
	}
	resps, scErr := c.scatter(calls)
	for ci, resp := range resps {
		if resp == nil {
			continue
		}
		n := dests[ci]
		if op == maintain.OpInsert {
			rows := append([]storage.RowID(nil), resp.(node.InsertResult).Rows...)
			projCopy := append([]types.Tuple(nil), buckets[n]...)
			tx.OnRollback(func() error {
				return c.undoCallRows(n, node.DeleteRows{Frag: arName, Rows: rows, Epoch: ep}, projCopy)
			})
		} else {
			dr := resp.(node.DeleteResult)
			tx.OnRollback(func() error {
				return c.undoCall(n, node.RestoreRows{Frag: arName, Rows: dr.Rows, Tuples: dr.Tuples, Epoch: ep})
			})
		}
	}
	return scErr
}

// stageGlobalIndex maintains one global index of the updated table. The
// statement's entries are grouped by index home node into one batched
// envelope per destination — replacing the per-(tuple, index) message
// storm — while each envelope's Sources field keeps the logical accounting
// of the calls it replaces: every entry counts one SEND from the base
// tuple's home node to the index home (free when they coincide), and the
// node meters charge per entry, so the paper's cost figures are unchanged
// by batching.
func (c *Cluster) stageGlobalIndex(tx *txn.Txn, t *catalog.Table, gi *catalog.GlobalIndex, locs []located, op maintain.Op) error {
	type giBatch struct {
		vals []types.Value
		gs   []storage.GlobalRowID
		srcs []int32
	}
	ci := t.Schema.MustColIndex(gi.Col)
	giName := gi.Name
	batches := make([]giBatch, c.NumNodes())
	for _, loc := range locs {
		val := loc.tuple[ci]
		home := c.part.NodeFor(val)
		b := &batches[home]
		b.vals = append(b.vals, val)
		b.gs = append(b.gs, storage.GlobalRowID{Node: int32(loc.node), Row: loc.row})
		b.srcs = append(b.srcs, int32(loc.node))
	}
	var calls []netsim.Call
	var dests []int
	for home := range batches {
		b := &batches[home]
		if len(b.vals) == 0 {
			continue
		}
		var req any
		if op == maintain.OpInsert {
			req = node.GIInsertBatch{GI: giName, Vals: b.vals, Gs: b.gs, Metered: true, Sources: b.srcs}
		} else {
			req = node.GIDeleteBatch{GI: giName, Vals: b.vals, Gs: b.gs, Sources: b.srcs}
		}
		calls = append(calls, netsim.Call{From: netsim.Coordinator, To: home, Req: req})
		dests = append(dests, home)
	}
	resps, scErr := c.scatter(calls)
	var outOfSync error
	for ci2, resp := range resps {
		if resp == nil {
			continue
		}
		home := dests[ci2]
		b := batches[home]
		if op == maintain.OpInsert {
			// Compensations originate at the coordinator, like every
			// undoCall: each undone entry is one coordinator SEND.
			srcs := coordinatorSources(len(b.vals))
			tx.OnRollback(func() error {
				return c.undoCall(home, node.GIDeleteBatch{GI: giName, Vals: b.vals, Gs: b.gs, Sources: srcs})
			})
		} else {
			ok := resp.(node.GIDeletedBatch).OK
			restored := giBatch{}
			for i, existed := range ok {
				if !existed {
					if outOfSync == nil {
						outOfSync = fmt.Errorf("cluster: global index %q missing entry for %v (out of sync)", giName, b.vals[i])
					}
					continue
				}
				restored.vals = append(restored.vals, b.vals[i])
				restored.gs = append(restored.gs, b.gs[i])
			}
			if len(restored.vals) == 0 {
				continue
			}
			srcs := coordinatorSources(len(restored.vals))
			tx.OnRollback(func() error {
				return c.undoCall(home, node.GIInsertBatch{GI: giName, Vals: restored.vals, Gs: restored.gs, Metered: true, Sources: srcs})
			})
		}
	}
	if scErr != nil {
		return scErr
	}
	return outOfSync
}

// coordinatorSources builds a Sources slice attributing every entry of a
// compensation batch to the coordinator, matching the per-entry undoCall
// accounting the batch replaces.
func coordinatorSources(n int) []int32 {
	srcs := make([]int32, n)
	for i := range srcs {
		srcs[i] = int32(netsim.Coordinator)
	}
	return srcs
}

// stageView computes and applies one view's delta. The strategy comes from
// the compiled stage: the pinned option, or the cost advisor's cheapest
// option for this statement's actual delta size. With a shared pre-pass
// (sx non-nil) the delta-join chain has already run — the stage reads the
// memoized final intermediate and performs only the per-view tail.
func (c *Cluster) stageView(tx *txn.Txn, vs *mplan.ViewStage, mp *mplan.Plan, tuples []types.Tuple, sx *sharedExec) error {
	var delta []types.Tuple
	var err error
	if sx != nil {
		p := sx.choice[vs].Plan
		cur, curSchema := tuples, p.DeltaSchema
		if n := len(p.Steps); n > 0 {
			r := sx.memo[p.Steps[n-1].ChainKey]
			cur, curSchema = r.tuples, r.schema
		}
		delta, err = maintain.FinishDelta(p, cur, curSchema)
	} else {
		opt := vs.Choose(c.NumNodes(), len(tuples), mp.ARCount, mp.GICount)
		delta, _, err = maintain.ComputeViewDelta(c.env, opt.Plan, tuples, c.cfg.Algo)
	}
	if err != nil {
		return err
	}
	v := vs.View
	if err := maintain.ApplyToView(c.env, v, delta, mp.Op); err != nil {
		return err
	}
	undoOp := maintain.OpDelete
	if mp.Op == maintain.OpDelete {
		undoOp = maintain.OpInsert
	}
	tx.OnRollback(func() error {
		// Node-down failures are absorbed: a crashed node's view fragments
		// are rebuilt from base relations during Recover, which subsumes
		// the unapplied part of this undo. Under replication the down
		// owners' followers still hold the forward delta's mirrored rows,
		// so the unapplied portion is mirrored to them before absorbing.
		err := maintain.ApplyToView(c.env, v, delta, undoOp)
		if err != nil {
			if _, down := fault.IsNodeDown(err); down {
				c.mirrorViewUndoForDown(v, delta, undoOp)
			}
		}
		return absorbNodeDown(err)
	})
	return nil
}

// ExplainPipeline renders the compiled maintenance pipeline for one
// (table, op) pair — EXPLAIN for the whole write path. op is "insert" or
// "delete".
func (c *Cluster) ExplainPipeline(table, op string) (string, error) {
	var mop maintain.Op
	switch op {
	case "insert":
		mop = maintain.OpInsert
	case "delete":
		mop = maintain.OpDelete
	default:
		return "", fmt.Errorf("cluster: unknown pipeline op %q (want insert or delete)", op)
	}
	h := c.lockGlobal()
	defer h.Release()
	mp, err := c.planFor(table, mop)
	if err != nil {
		return "", err
	}
	out := mp.Describe()
	if mp.SharedPotential && !c.cfg.DisablePlanSharing {
		// Render the concrete DAG for a representative single-tuple delta —
		// the same resolution the executor performs per statement.
		out += mp.DescribeDAG(c.NumNodes(), 1)
	}
	return out, nil
}

// PlanCacheLen reports how many compiled plans the cache currently holds.
func (c *Cluster) PlanCacheLen() int { return c.mcache.Len() }

// AdviseMaterialization runs the materialization advisor over the current
// catalog and statistics: which auxiliary relations / global indexes would
// reduce the modeled maintenance workload of the present view set under
// the shared-DAG executor. Pure analysis — nothing is created.
func (c *Cluster) AdviseMaterialization() (*mplan.Advice, error) {
	h := c.lockGlobal()
	defer h.Release()
	return mplan.Advise(c.cat, c.st, c.NumNodes())
}
