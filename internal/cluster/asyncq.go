package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"joinview/internal/catalog"
	"joinview/internal/expr"
	"joinview/internal/lockmgr"
	"joinview/internal/maintain"
	"joinview/internal/mplan"
	"joinview/internal/node"
	"joinview/internal/txn"
	"joinview/internal/types"
	"joinview/internal/wal"
)

// This file is the durable group-commit maintenance queue (Config
// .AsyncMaintenance). A deferring DML statement validates, resolves its
// victims against the effective table state (flushed base plus the
// pending queue, in order) and enqueues its logical delta instead of
// running the maintenance pipeline; in Durability mode the enqueue is a
// forced coordinator-log record — the statement's group-commit durability
// point. A flush epoch snapshots the queue, compacts it per table
// (insert/delete pairs cancel, repeated keys collapse to their net
// count), and drives one batched run of the compiled mplan pipeline per
// table group, each group a presumed-abort 2PC statement whose commit
// record carries a FlushCommit tag. The protocol is replay-idempotent:
//
//	ENQUEUE (forced)            the DML statement's commit point
//	EPOCH-PLAN (forced)         epoch rolls forward from here
//	COMMIT+FlushCommit (forced) per group: commit point == done marker
//	EPOCH-DONE (forced)         entries <= ThroughSeq discharged
//
// Recovery (ResumeMaintenance) rebuilds the queue from these records: an
// epoch plan without its done record re-applies exactly the groups that
// lack a tagged commit (uncommitted partial groups were already aborted
// at the nodes by presumed abort), then logs the done record; entries
// past the last done record are pending again. The flusher announces the
// phase boundaries "enqueue", "compact", "flush" and "ack" through the
// fault injector so chaos tests can kill the coordinator or a node at
// each step.
//
// All stored state — base fragments, auxiliary relations, global
// indexes, views — stays prefix-consistent at the watermark (the queue
// defers whole statements, not just derived work), so consistency checks
// and bounded-stale reads are valid at any moment.

// ErrOverload reports a DML statement refused by the queue's admission
// control: queue depth or staleness exceeded its configured bound
// (Options.MaxQueueDepth / Options.MaxStaleness). The statement left no
// effects; retry after the flusher drains.
var ErrOverload = errors.New("cluster: maintenance queue overloaded")

// ReadMode selects the staleness contract of an async-mode view read.
type ReadMode uint8

const (
	// ReadAtWatermark returns the materialized state immediately, with
	// the watermark alongside — the bounded-staleness read. The contract
	// is per-table prefix consistency: each table (and the views over
	// it) reflects a prefix of the statement stream no older than
	// Watermark.Epoch. While a flush epoch is in flight, its committed
	// table groups are already visible, so the state may lie anywhere
	// between the returned watermark and the in-flight epoch; a
	// cross-table snapshot at exactly Watermark.Epoch is guaranteed only
	// when no flush is running.
	ReadAtWatermark ReadMode = iota
	// ReadFresh flushes every pending delta first, so the read reflects
	// all previously committed statements.
	ReadFresh
)

// Watermark locates the queue's apply frontier: what a bounded-stale
// read reflects and what it is missing.
type Watermark struct {
	// Epoch is the last completed flush epoch (0 before any flush).
	Epoch uint64
	// FlushedSeq is the highest enqueue sequence discharged by a
	// completed epoch.
	FlushedSeq uint64
	// Pending is the number of deferred statements not yet applied.
	Pending int
	// Lag is the age of the oldest pending entry (0 when none).
	Lag time.Duration
}

// queuedDelta is one deferred logical statement.
type queuedDelta struct {
	seq    uint64
	table  string
	op     maintain.Op
	tuples []types.Tuple
	at     time.Time
}

// flushGroup is one table's compacted net delta within an epoch.
type flushGroup struct {
	table   string
	deletes []types.Tuple
	inserts []types.Tuple
}

// epochRun is an epoch between its plan record and its done record. Once
// created (and, in Durability mode, logged) it must roll forward: groups
// already committed are durable and cannot be taken back, so a failed
// run is retried — done groups skipped — never re-planned.
type epochRun struct {
	epoch      uint64
	throughSeq uint64
	entries    []queuedDelta // raw entries, for the in-flight overlay
	groups     []flushGroup
	done       []bool
	rawTuples  int
	// eplan is the compiled batched pipeline (lazy; recompiled after a
	// coordinator restart).
	eplan *mplan.EpochPlan
}

// tableDone reports whether every group of the run touching table has
// committed — i.e. the run's entries for that table are fully reflected
// in stored state.
func (r *epochRun) tableDone(table string) bool {
	for i, g := range r.groups {
		if g.table == table && !r.done[i] {
			return false
		}
	}
	return true
}

// asyncQueue is the coordinator's deferred-maintenance state. aq.mu is a
// leaf lock: nothing else is acquired under it.
type asyncQueue struct {
	mu         sync.Mutex
	cond       *sync.Cond // broadcast when depth drops or an epoch completes
	pending    []queuedDelta
	nextSeq    uint64 // next enqueue sequence (first entry is seq 1)
	flushedSeq uint64
	epoch      uint64 // last completed epoch
	epochSeq   uint64 // last allocated epoch number (>= epoch)
	inflight   *epochRun
	lastErr    error // most recent background-flush failure

	// ddlHold counts DDL drains in progress: while positive, new
	// deferring DML statements stall at ddlGate so the drain-then-lock
	// loop in lockGlobalDrained terminates (only statements already past
	// the gate can still enqueue, and there are finitely many).
	ddlHold int

	wake     chan struct{} // nudges the background flusher
	stop     chan struct{}
	stopOnce sync.Once
}

func newAsyncQueue() *asyncQueue {
	aq := &asyncQueue{wake: make(chan struct{}, 1), stop: make(chan struct{})}
	aq.cond = sync.NewCond(&aq.mu)
	return aq
}

// asyncOn reports whether DML defers its maintenance into the queue.
func (c *Cluster) asyncOn() bool { return c.cfg.AsyncMaintenance }

// Watermark snapshots the queue's apply frontier. Zero when async
// maintenance is off.
func (c *Cluster) Watermark() Watermark {
	if c.aq == nil {
		return Watermark{}
	}
	c.aq.mu.Lock()
	defer c.aq.mu.Unlock()
	w := Watermark{Epoch: c.aq.epoch, FlushedSeq: c.aq.flushedSeq, Pending: len(c.aq.pending)}
	if len(c.aq.pending) > 0 {
		w.Lag = time.Since(c.aq.pending[0].at)
	}
	return w
}

// FlushErr returns the most recent background-flush failure (nil after a
// flush succeeds). Manual Flush calls report their errors directly.
func (c *Cluster) FlushErr() error {
	if c.aq == nil {
		return nil
	}
	c.aq.mu.Lock()
	defer c.aq.mu.Unlock()
	return c.aq.lastErr
}

// admitDelta applies admission control. Called BEFORE the statement's
// table locks are taken: a blocked writer must not hold locks the
// flusher needs to drain the queue. The bound is therefore advisory —
// concurrent admitted writers may briefly overshoot it.
func (c *Cluster) admitDelta() error {
	if c.cfg.MaxQueueDepth <= 0 && c.cfg.MaxStaleness <= 0 {
		return nil
	}
	aq := c.aq
	background := c.cfg.EpochSize > 0 || c.cfg.FlushInterval > 0
	aq.mu.Lock()
	for {
		select {
		case <-aq.stop:
			aq.mu.Unlock()
			return fmt.Errorf("cluster: maintenance queue closed")
		default:
		}
		depth := len(aq.pending)
		over := ""
		if c.cfg.MaxQueueDepth > 0 && depth >= c.cfg.MaxQueueDepth {
			over = fmt.Sprintf("depth %d >= max %d", depth, c.cfg.MaxQueueDepth)
		} else if c.cfg.MaxStaleness > 0 && depth > 0 && time.Since(aq.pending[0].at) > c.cfg.MaxStaleness {
			over = fmt.Sprintf("staleness %v > max %v", time.Since(aq.pending[0].at).Round(time.Millisecond), c.cfg.MaxStaleness)
		}
		if over == "" {
			aq.mu.Unlock()
			return nil
		}
		c.qstats.RecordOverload()
		if !c.cfg.OverloadBlock {
			aq.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrOverload, over)
		}
		if background {
			// A persistently failing flush must not hot-loop: if the last
			// flush attempt errored, the queue is not draining, so return
			// the failure to the writer instead of re-waking the flusher
			// (it retries on its own next wake). lastErr clears on the
			// next successful epoch and writers can retry then.
			if err := aq.lastErr; err != nil {
				aq.mu.Unlock()
				return fmt.Errorf("%w: %s; queue not draining: %v", ErrOverload, over, err)
			}
			// Wake the flusher and wait for the next epoch to complete.
			select {
			case aq.wake <- struct{}{}:
			default:
			}
			aq.cond.Wait()
			continue
		}
		// No background flusher: the blocked writer drains inline.
		aq.mu.Unlock()
		if err := c.Flush(); err != nil {
			return fmt.Errorf("cluster: inline drain for blocked writer: %w", err)
		}
		aq.mu.Lock()
	}
}

// enqueueEntries appends the statement's deltas to the queue atomically
// (one statement may carry a delete and an insert entry — an update). In
// Durability mode every entry is logged and one Force makes the batch
// durable: the statement's group-commit point.
func (c *Cluster) enqueueEntries(entries []queuedDelta) {
	aq := c.aq
	aq.mu.Lock()
	for i := range entries {
		aq.nextSeq++
		entries[i].seq = aq.nextSeq
		entries[i].at = time.Now()
		if c.cfg.Durability {
			c.coordLog.Append(wal.Record{Kind: wal.KindEnqueue, Seq: entries[i].seq, Req: wal.EnqueueDelta{
				Seq:    entries[i].seq,
				Table:  entries[i].table,
				Op:     uint8(entries[i].op),
				At:     entries[i].at.UnixNano(),
				Tuples: entries[i].tuples,
			}})
		}
	}
	if c.cfg.Durability {
		c.coordLog.Force()
	}
	aq.pending = append(aq.pending, entries...)
	depth := len(aq.pending)
	aq.mu.Unlock()
	for _, e := range entries {
		c.qstats.RecordEnqueue(len(e.tuples))
	}
	if c.cfg.EpochSize > 0 && depth >= c.cfg.EpochSize {
		select {
		case aq.wake <- struct{}{}:
		default:
		}
	}
}

// insertAsync defers one insert statement: validate now, maintain later.
func (c *Cluster) insertAsync(table string, tuples []types.Tuple) error {
	if err := c.ddlGate(); err != nil {
		return err
	}
	if err := c.admitDelta(); err != nil {
		return err
	}
	h := c.lockStmt(table)
	defer h.Release()
	if err := c.cfg.Faults.Phase("enqueue"); err != nil {
		return err
	}
	if err := c.failIfDegraded(); err != nil {
		return err
	}
	t, err := c.cat.Table(table)
	if err != nil {
		return err
	}
	cloned := make([]types.Tuple, len(tuples))
	for i, tup := range tuples {
		if err := t.Schema.Validate(tup); err != nil {
			return fmt.Errorf("cluster: insert into %q: %w", table, err)
		}
		cloned[i] = tup.Clone()
	}
	c.enqueueEntries([]queuedDelta{{table: table, op: maintain.OpInsert, tuples: cloned}})
	c.bumpRows(table, int64(len(tuples)))
	return nil
}

// deleteAsync defers one delete statement. Victims are resolved NOW
// against the effective table state — the flushed base overlaid with the
// pending queue — so the returned tuples and the deferred delta match
// what a synchronous delete would have removed.
func (c *Cluster) deleteAsync(table string, pred expr.Expr) ([]types.Tuple, error) {
	if err := c.ddlGate(); err != nil {
		return nil, err
	}
	if err := c.admitDelta(); err != nil {
		return nil, err
	}
	h := c.lockStmt(table)
	defer h.Release()
	if err := c.cfg.Faults.Phase("enqueue"); err != nil {
		return nil, err
	}
	if err := c.failIfDegraded(); err != nil {
		return nil, err
	}
	t, err := c.cat.Table(table)
	if err != nil {
		return nil, err
	}
	victims, err := c.overlayVictims(t, pred)
	if err != nil {
		return nil, err
	}
	if len(victims) == 0 {
		return nil, nil
	}
	c.enqueueEntries([]queuedDelta{{table: table, op: maintain.OpDelete, tuples: victims}})
	c.bumpRows(table, -int64(len(victims)))
	return append([]types.Tuple(nil), victims...), nil
}

// updateAsync defers one update statement: the delete of the current
// victims and the insert of their replacements enqueue atomically.
func (c *Cluster) updateAsync(table string, set map[string]types.Value, pred expr.Expr) (int, error) {
	if err := c.ddlGate(); err != nil {
		return 0, err
	}
	if err := c.admitDelta(); err != nil {
		return 0, err
	}
	h := c.lockStmt(table)
	defer h.Release()
	if err := c.cfg.Faults.Phase("enqueue"); err != nil {
		return 0, err
	}
	if err := c.failIfDegraded(); err != nil {
		return 0, err
	}
	t, err := c.cat.Table(table)
	if err != nil {
		return 0, err
	}
	for col := range set {
		if t.Schema.ColIndex(col) < 0 {
			return 0, fmt.Errorf("cluster: update %q: unknown column %q", table, col)
		}
	}
	victims, err := c.overlayVictims(t, pred)
	if err != nil {
		return 0, err
	}
	if len(victims) == 0 {
		return 0, nil
	}
	replacement := make([]types.Tuple, len(victims))
	for i, v := range victims {
		nt := v.Clone()
		for col, val := range set {
			nt[t.Schema.MustColIndex(col)] = val
		}
		replacement[i] = nt
	}
	c.enqueueEntries([]queuedDelta{
		{table: table, op: maintain.OpDelete, tuples: victims},
		{table: table, op: maintain.OpInsert, tuples: replacement},
	})
	return len(victims), nil
}

// overlayVictims computes the tuples pred matches in the table's
// effective state: the stored base (metered scan, like the synchronous
// victim scan) overlaid with every unapplied queue entry in order, bag
// semantics. Called with the table's X claim held, so neither a flush
// nor another writer can move the state underneath.
func (c *Cluster) overlayVictims(t *catalog.Table, pred expr.Expr) ([]types.Tuple, error) {
	base, _, err := c.findVictims(t.Name, pred)
	if err != nil {
		return nil, err
	}
	// Gather the unapplied entries for this table: the in-flight epoch's
	// (unless its table groups already committed, in which case the base
	// scan saw their effect) followed by the pending queue. Entries with
	// seq <= the in-flight run's throughSeq still sit in aq.pending (they
	// are discharged only at epoch end), so the pending loop must skip
	// them — they are already represented either by run.entries (table
	// not done) or by the applied base state (table done); counting them
	// again would resolve phantom duplicate victims.
	c.aq.mu.Lock()
	run := c.aq.inflight
	var overlay []queuedDelta
	if run != nil && !run.tableDone(t.Name) {
		for _, e := range run.entries {
			if e.table == t.Name {
				overlay = append(overlay, e)
			}
		}
	}
	for _, e := range c.aq.pending {
		if run != nil && e.seq <= run.throughSeq {
			continue
		}
		if e.table == t.Name {
			overlay = append(overlay, e)
		}
	}
	c.aq.mu.Unlock()
	if len(overlay) == 0 {
		return base, nil
	}
	// Replay the overlay: pending inserts add instances; pending deletes
	// consume an added instance first, else mark a stored instance
	// removed.
	removed := map[string]int{} // stored instances deleted by the overlay
	var added []types.Tuple     // instances inserted by the overlay
	for _, e := range overlay {
		for _, tup := range e.tuples {
			if e.op == maintain.OpInsert {
				added = append(added, tup)
				continue
			}
			consumed := false
			for i, a := range added {
				if a.Equal(tup) {
					added = append(added[:i], added[i+1:]...)
					consumed = true
					break
				}
			}
			if !consumed {
				removed[string(types.EncodeTuple(tup))]++
			}
		}
	}
	var victims []types.Tuple
	for _, tup := range base {
		k := string(types.EncodeTuple(tup))
		if removed[k] > 0 {
			removed[k]--
			continue
		}
		victims = append(victims, tup)
	}
	for _, tup := range added {
		ok, err := expr.Matches(pred, t.Schema, tup)
		if err != nil {
			return nil, err
		}
		if ok {
			victims = append(victims, tup)
		}
	}
	return victims, nil
}

// Flush completes any in-flight epoch, then drains every pending entry
// in one new epoch. A no-op when async maintenance is off or the queue
// is empty. Concurrent calls serialize.
func (c *Cluster) Flush() error {
	if !c.asyncOn() {
		return nil
	}
	c.flushMu.Lock()
	defer c.flushMu.Unlock()
	err := c.withFailover(c.flushLocked)
	c.aq.mu.Lock()
	c.aq.lastErr = err
	if err != nil {
		// Waiters must re-check: the queue is not draining.
		c.aq.cond.Broadcast()
	}
	c.aq.mu.Unlock()
	return err
}

func (c *Cluster) flushLocked() error {
	// Roll an interrupted epoch forward before opening a new one.
	c.aq.mu.Lock()
	run := c.aq.inflight
	c.aq.mu.Unlock()
	if run != nil {
		if err := c.applyEpoch(run); err != nil {
			return err
		}
	}

	c.aq.mu.Lock()
	if len(c.aq.pending) == 0 {
		c.aq.mu.Unlock()
		return nil
	}
	entries := append([]queuedDelta(nil), c.aq.pending...)
	c.aq.mu.Unlock()

	groups, raw := compactEntries(entries)
	if err := c.cfg.Faults.Phase("compact"); err != nil {
		return err // nothing durable yet: the epoch never existed
	}
	if len(groups) == 0 {
		// Every delta cancelled: discharge the entries without touching a
		// node. The done record still commits the discard durably.
		c.qstats.RecordEpoch(raw, 0)
		return c.completeEpoch(&epochRun{
			epoch:      c.nextEpochNum(),
			throughSeq: entries[len(entries)-1].seq,
			entries:    entries,
			rawTuples:  raw,
		})
	}

	run = &epochRun{
		epoch:      c.nextEpochNum(),
		throughSeq: entries[len(entries)-1].seq,
		entries:    entries,
		groups:     groups,
		done:       make([]bool, len(groups)),
		rawTuples:  raw,
	}
	if c.cfg.Durability {
		c.coordLog.Append(wal.Record{Kind: wal.KindEpochPlan, Req: walEpochPlan(run)})
		c.coordLog.Force()
	}
	c.aq.mu.Lock()
	c.aq.inflight = run
	c.aq.mu.Unlock()
	return c.applyEpoch(run)
}

// nextEpochNum allocates the next epoch number.
func (c *Cluster) nextEpochNum() uint64 {
	c.aq.mu.Lock()
	defer c.aq.mu.Unlock()
	c.aq.epochSeq++
	return c.aq.epochSeq
}

// walEpochPlan projects a run onto its log payload.
func walEpochPlan(run *epochRun) wal.EpochPlan {
	p := wal.EpochPlan{Epoch: run.epoch, ThroughSeq: run.throughSeq}
	for _, g := range run.groups {
		p.Groups = append(p.Groups, wal.EpochGroup{Table: g.table, Deletes: g.deletes, Inserts: g.inserts})
	}
	return p
}

// compactEntries nets the epoch's entries per table into their final
// multiset delta: an insert/delete pair of the same tuple cancels, and
// repeated instances collapse to one group entry per net count. Order is
// deterministic — tables sorted by name, tuples by first appearance.
// raw is the total tuple count that entered compaction.
func compactEntries(entries []queuedDelta) (groups []flushGroup, raw int) {
	type net struct {
		tuple types.Tuple
		count int
		order int
	}
	perTable := map[string]map[string]*net{}
	for _, e := range entries {
		m := perTable[e.table]
		if m == nil {
			m = map[string]*net{}
			perTable[e.table] = m
		}
		for _, tup := range e.tuples {
			raw++
			k := string(types.EncodeTuple(tup))
			n := m[k]
			if n == nil {
				n = &net{tuple: tup, order: len(m)}
				m[k] = n
			}
			if e.op == maintain.OpInsert {
				n.count++
			} else {
				n.count--
			}
		}
	}
	tables := make([]string, 0, len(perTable))
	for t := range perTable {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		nets := make([]*net, 0, len(perTable[t]))
		for _, n := range perTable[t] {
			nets = append(nets, n)
		}
		sort.Slice(nets, func(i, j int) bool { return nets[i].order < nets[j].order })
		g := flushGroup{table: t}
		for _, n := range nets {
			for i := 0; i < -n.count; i++ {
				g.deletes = append(g.deletes, n.tuple)
			}
			for i := 0; i < n.count; i++ {
				g.inserts = append(g.inserts, n.tuple)
			}
		}
		if len(g.deletes) > 0 || len(g.inserts) > 0 {
			groups = append(groups, g)
		}
	}
	return groups, raw
}

// applyEpoch drives a run to its done record: every unapplied group runs
// as one atomic batched-pipeline statement, then the epoch completes. An
// error (a crashed node, an injected coordinator failure) leaves the run
// in flight — a later Flush or ResumeMaintenance retries exactly the
// groups still undone.
func (c *Cluster) applyEpoch(run *epochRun) error {
	if run.eplan == nil && len(run.groups) > 0 {
		specs := make([]mplan.GroupSpec, 0, 2*len(run.groups))
		for _, g := range run.groups {
			if len(g.deletes) > 0 {
				specs = append(specs, mplan.GroupSpec{Table: g.table, Op: maintain.OpDelete, DeltaSize: len(g.deletes)})
			}
			if len(g.inserts) > 0 {
				specs = append(specs, mplan.GroupSpec{Table: g.table, Op: maintain.OpInsert, DeltaSize: len(g.inserts)})
			}
		}
		ep, err := mplan.CompileEpoch(c.cat, c.st, specs, func(table string, op maintain.Op) (*mplan.Plan, error) {
			return c.planFor(table, op)
		})
		if err != nil {
			return err
		}
		run.eplan = ep
	}
	step := 0
	for gi := range run.groups {
		g := &run.groups[gi]
		delStep, insStep := -1, -1
		if len(g.deletes) > 0 {
			delStep = step
			step++
		}
		if len(g.inserts) > 0 {
			insStep = step
			step++
		}
		if run.done[gi] {
			continue
		}
		if err := c.cfg.Faults.Phase("flush"); err != nil {
			return err
		}
		if err := c.applyGroup(run, gi, delStep, insStep); err != nil {
			return fmt.Errorf("cluster: epoch %d group %q: %w", run.epoch, g.table, err)
		}
	}
	if err := c.cfg.Faults.Phase("ack"); err != nil {
		return err
	}
	flushed := 0
	for _, g := range run.groups {
		flushed += len(g.deletes) + len(g.inserts)
	}
	c.qstats.RecordEpoch(run.rawTuples, flushed)
	return c.completeEpoch(run)
}

// applyGroup runs one table's net delta — deletes then inserts — as one
// atomic statement. The 2PC commit record carries the FlushCommit tag,
// so "committed" and "done" are a single forced write; the done flag is
// set before the table claim releases, keeping the overlay readers'
// view of (stored state, done flags) consistent.
func (c *Cluster) applyGroup(run *epochRun, gi, delStep, insStep int) error {
	g := &run.groups[gi]
	h := c.lockStmt(g.table)
	defer h.Release()
	if err := c.failIfDegraded(); err != nil {
		return err
	}
	tab, err := c.cat.Table(g.table)
	if err != nil {
		return err
	}
	var delPlan, insPlan *mplan.Plan
	if delStep >= 0 {
		delPlan = run.eplan.Steps[delStep].Plan
		if !delPlan.Valid(c.cat, c.st) {
			if delPlan, err = c.planFor(g.table, maintain.OpDelete); err != nil {
				return err
			}
		}
	}
	if insStep >= 0 {
		insPlan = run.eplan.Steps[insStep].Plan
		if !insPlan.Valid(c.cat, c.st) {
			if insPlan, err = c.planFor(g.table, maintain.OpInsert); err != nil {
				return err
			}
		}
	}
	err = c.runStmtTagged(wal.FlushCommit{Epoch: run.epoch, Group: gi}, func(tx *txn.Txn) error {
		if delPlan != nil {
			victims, locs, err := c.locateTuples(tab, g.deletes)
			if err != nil {
				return err
			}
			if err := c.execPlan(tx, delPlan, victims, locs); err != nil {
				return err
			}
		}
		if insPlan != nil {
			return c.execPlan(tx, insPlan, g.inserts, nil)
		}
		return nil
	})
	if err != nil {
		return err
	}
	c.publishStmt(g.table)
	c.aq.mu.Lock()
	run.done[gi] = true
	c.aq.mu.Unlock()
	return nil
}

// completeEpoch logs the done record, discharges the covered entries and
// wakes waiting readers and writers.
func (c *Cluster) completeEpoch(run *epochRun) error {
	if c.cfg.Durability {
		c.coordLog.Append(wal.Record{Kind: wal.KindEpochDone, Req: wal.EpochDone{Epoch: run.epoch, ThroughSeq: run.throughSeq}})
		c.coordLog.Force()
	}
	aq := c.aq
	aq.mu.Lock()
	i := 0
	for i < len(aq.pending) && aq.pending[i].seq <= run.throughSeq {
		i++
	}
	aq.pending = append([]queuedDelta(nil), aq.pending[i:]...)
	if run.throughSeq > aq.flushedSeq {
		aq.flushedSeq = run.throughSeq
	}
	if run.epoch > aq.epoch {
		aq.epoch = run.epoch
	}
	aq.inflight = nil
	aq.lastErr = nil
	aq.cond.Broadcast()
	aq.mu.Unlock()
	return nil
}

// locateTuples finds one stored instance per tuple (value-addressed, via
// each tuple's home node), returning victims and their locations for the
// delete pipeline.
func (c *Cluster) locateTuples(tab *catalog.Table, tuples []types.Tuple) ([]types.Tuple, []located, error) {
	buckets, err := c.part.Spread(tab.Schema, tab.PartitionCol, tuples)
	if err != nil {
		return nil, nil, err
	}
	var victims []types.Tuple
	var locs []located
	for n, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		resp, err := c.call(n, node.LocateMatch{Frag: tab.Name, HintCol: tab.PartitionCol, Tuples: bucket})
		if err != nil {
			return nil, nil, err
		}
		rr := resp.(node.RowsResult)
		if len(rr.Rows) != len(bucket) {
			return nil, nil, fmt.Errorf("cluster: located %d of %d tuples in %q at node %d",
				len(rr.Rows), len(bucket), tab.Name, n)
		}
		for i := range rr.Rows {
			victims = append(victims, rr.Tuples[i])
			locs = append(locs, located{node: n, row: rr.Rows[i], tuple: rr.Tuples[i]})
		}
	}
	return victims, locs, nil
}

// ResumeMaintenance settles the queue after a failure: in Durability
// mode the authoritative queue state is rebuilt from the coordinator's
// log (the in-memory picture may be stale after a simulated coordinator
// crash), then any in-flight epoch rolls forward — re-applying exactly
// the groups without a tagged commit record — and its done record is
// written. Pending entries beyond the in-flight epoch stay queued for
// the normal flusher. Call it after crashed nodes have recovered.
func (c *Cluster) ResumeMaintenance() error {
	if !c.asyncOn() {
		return nil
	}
	c.flushMu.Lock()
	defer c.flushMu.Unlock()
	if c.cfg.Durability {
		c.rebuildQueueFromLog()
	}
	c.aq.mu.Lock()
	run := c.aq.inflight
	c.aq.mu.Unlock()
	if run == nil {
		return nil
	}
	if err := c.applyEpoch(run); err != nil {
		return err
	}
	return nil
}

// rebuildQueueFromLog reconstructs the queue from the coordinator's
// forced records: pending = enqueues past the last epoch-done record,
// in-flight = the epoch plan without a done record (its committed groups
// identified by FlushCommit-tagged commit records).
func (c *Cluster) rebuildQueueFromLog() {
	var enqueues []wal.EnqueueDelta
	plans := map[uint64]wal.EpochPlan{}
	doneEpochs := map[uint64]bool{}
	committed := map[uint64]map[int]bool{}
	var lastDoneThrough, maxSeq, maxEpoch uint64
	for _, rec := range c.coordLog.All() {
		switch rec.Kind {
		case wal.KindEnqueue:
			e := rec.Req.(wal.EnqueueDelta)
			enqueues = append(enqueues, e)
			if e.Seq > maxSeq {
				maxSeq = e.Seq
			}
		case wal.KindEpochPlan:
			p := rec.Req.(wal.EpochPlan)
			plans[p.Epoch] = p
			if p.Epoch > maxEpoch {
				maxEpoch = p.Epoch
			}
		case wal.KindEpochDone:
			d := rec.Req.(wal.EpochDone)
			doneEpochs[d.Epoch] = true
			if d.ThroughSeq > lastDoneThrough {
				lastDoneThrough = d.ThroughSeq
			}
			if d.Epoch > maxEpoch {
				maxEpoch = d.Epoch
			}
		case wal.KindCommit:
			if fc, ok := rec.Req.(wal.FlushCommit); ok {
				if committed[fc.Epoch] == nil {
					committed[fc.Epoch] = map[int]bool{}
				}
				committed[fc.Epoch][fc.Group] = true
			}
		}
	}
	var inflight *epochRun
	for epoch, p := range plans {
		if doneEpochs[epoch] {
			continue
		}
		// At most one: flushes serialize and a new plan is only logged
		// after the previous epoch's done record.
		run := &epochRun{epoch: epoch, throughSeq: p.ThroughSeq, done: make([]bool, len(p.Groups))}
		for _, g := range p.Groups {
			run.groups = append(run.groups, flushGroup{table: g.Table, deletes: g.Deletes, inserts: g.Inserts})
			run.rawTuples += len(g.Deletes) + len(g.Inserts)
		}
		for gi := range run.done {
			run.done[gi] = committed[epoch][gi]
		}
		inflight = run
	}
	now := time.Now()
	var pending, inflightEntries []queuedDelta
	for _, e := range enqueues {
		if e.Seq <= lastDoneThrough {
			continue
		}
		// Restore the original enqueue time from the log so staleness
		// bounds survive a coordinator restart; records written before
		// the At field carry zero and fall back to the rebuild time.
		at := now
		if e.At > 0 {
			at = time.Unix(0, e.At)
		}
		qd := queuedDelta{seq: e.Seq, table: e.Table, op: maintain.Op(e.Op), tuples: e.Tuples, at: at}
		if inflight != nil && e.Seq <= inflight.throughSeq {
			inflightEntries = append(inflightEntries, qd)
			continue
		}
		pending = append(pending, qd)
	}
	if inflight != nil {
		inflight.entries = inflightEntries
	}
	aq := c.aq
	aq.mu.Lock()
	aq.pending = pending
	aq.inflight = inflight
	aq.flushedSeq = lastDoneThrough
	if maxSeq > aq.nextSeq {
		aq.nextSeq = maxSeq
	}
	if maxEpoch > aq.epochSeq {
		aq.epochSeq = maxEpoch
	}
	doneMax := uint64(0)
	for e := range doneEpochs {
		if e > doneMax {
			doneMax = e
		}
	}
	aq.epoch = doneMax
	aq.mu.Unlock()
}

// ReadViewRows reads a view under the chosen staleness mode. ReadFresh
// drains the queue first; ReadAtWatermark reads the materialized state
// immediately — prefix-consistent per table, at least as fresh as the
// returned watermark (see the ReadMode docs for the mid-flush caveat).
// Degraded clusters return partial rows with ErrPartial, as ever.
func (c *Cluster) ReadViewRows(name string, mode ReadMode) ([]types.Tuple, Watermark, error) {
	if mode == ReadFresh && c.asyncOn() {
		if err := c.Flush(); err != nil {
			return nil, c.Watermark(), err
		}
	}
	rows, err := c.ViewRows(name)
	return rows, c.Watermark(), err
}

// startFlusher launches the background epoch flusher. It wakes when the
// queue reaches EpochSize (nudged by enqueue), every FlushInterval, and
// when blocked writers need a drain; failures are retried on the next
// wake and surfaced through FlushErr.
func (c *Cluster) startFlusher() {
	c.flusherWG.Add(1)
	go func() {
		defer c.flusherWG.Done()
		var timer *time.Timer
		var tick <-chan time.Time
		if c.cfg.FlushInterval > 0 {
			timer = time.NewTimer(c.cfg.FlushInterval)
			tick = timer.C
			defer timer.Stop()
		}
		for {
			select {
			case <-c.aq.stop:
				return
			case <-c.aq.wake:
			case <-tick:
			}
			if timer != nil {
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(c.cfg.FlushInterval)
			}
			_ = c.Flush() // error kept in FlushErr; retried next wake
		}
	}()
}

// stopFlusher shuts the background flusher down and releases any blocked
// writers.
func (c *Cluster) stopFlusher() {
	if c.aq == nil {
		return
	}
	c.aq.stopOnce.Do(func() { close(c.aq.stop) })
	c.flusherWG.Wait()
	c.aq.mu.Lock()
	c.aq.cond.Broadcast()
	c.aq.mu.Unlock()
}

// ddlGate stalls a deferring DML statement while a DDL drain is in
// progress. Called before the statement takes any lock, so a gated
// writer holds nothing the drain needs; it resumes once the DDL has its
// global lock (and then queues behind it on the ordinary lock protocol,
// re-reading the post-DDL catalog under its own statement lock).
func (c *Cluster) ddlGate() error {
	aq := c.aq
	aq.mu.Lock()
	defer aq.mu.Unlock()
	for aq.ddlHold > 0 {
		select {
		case <-aq.stop:
			return fmt.Errorf("cluster: maintenance queue closed")
		default:
		}
		aq.cond.Wait()
	}
	return nil
}

// setDDLHold raises or lowers the DDL drain gate.
func (c *Cluster) setDDLHold(hold bool) {
	aq := c.aq
	aq.mu.Lock()
	if hold {
		aq.ddlHold++
	} else {
		aq.ddlHold--
		if aq.ddlHold == 0 {
			aq.cond.Broadcast()
		}
	}
	aq.mu.Unlock()
}

// lockGlobalDrained drains the maintenance queue and acquires the DDL's
// global exclusive lock, guaranteeing the queue is empty while the lock
// is held — DDL may drop or backfill the very objects pending deltas
// reference. The drain cannot run under the lock (a flush takes
// statement claims, which the global lock excludes), so it loops
// flush-then-lock and re-checks the queue under the lock: a writer that
// slips an enqueue into the window between the drain and the
// acquisition makes the check fail, and the loop releases and
// re-drains. The gate makes the loop terminate — once raised, only the
// finitely many statements already past it can still enqueue.
func (c *Cluster) lockGlobalDrained() (*lockmgr.Held, error) {
	if !c.asyncOn() {
		return c.lockGlobal(), nil
	}
	c.setDDLHold(true)
	defer c.setDDLHold(false)
	for {
		if err := c.Flush(); err != nil {
			return nil, fmt.Errorf("cluster: draining maintenance queue before DDL: %w", err)
		}
		h := c.lockGlobal()
		c.aq.mu.Lock()
		empty := len(c.aq.pending) == 0 && c.aq.inflight == nil
		c.aq.mu.Unlock()
		if empty {
			return h, nil
		}
		h.Release()
	}
}
