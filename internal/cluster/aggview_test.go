package cluster

import (
	"fmt"
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/expr"
	"joinview/internal/types"
)

// aggViewDef is an aggregate join view over the TPC-R pair: per-customer
// order count and total price (the companion-work shape).
func aggViewDef(name string, s catalog.Strategy) *catalog.View {
	return &catalog.View{
		Name:   name,
		Tables: []string{"customer", "orders"},
		Joins: []catalog.JoinPred{
			{Left: "customer", LeftCol: "custkey", Right: "orders", RightCol: "custkey"},
		},
		Out: []catalog.OutCol{{Table: "customer", Col: "custkey"}},
		Aggs: []catalog.AggSpec{
			{Func: "count"},
			{Func: "sum", Table: "orders", Col: "totalprice"},
		},
		PartitionTable: "customer", PartitionCol: "custkey",
		Strategy: s,
	}
}

// refAgg recomputes the aggregate view by brute force.
func refAgg(t *testing.T, c *Cluster) map[int64][2]float64 {
	t.Helper()
	customers, _ := c.TableRows("customer")
	orders, _ := c.TableRows("orders")
	out := map[int64][2]float64{}
	for _, cu := range customers {
		for _, o := range orders {
			if cu[0].I == o[1].I {
				e := out[cu[0].I]
				e[0]++         // count
				e[1] += o[2].F // sum(totalprice)
				out[cu[0].I] = e
			}
		}
	}
	return out
}

func checkAggView(t *testing.T, c *Cluster, name string) {
	t.Helper()
	rows, err := c.ViewRows(name)
	if err != nil {
		t.Fatal(err)
	}
	want := refAgg(t, c)
	if len(rows) != len(want) {
		t.Fatalf("view %s has %d groups, want %d", name, len(rows), len(want))
	}
	for _, r := range rows {
		// Schema: customer.custkey, count, sum(orders.totalprice).
		key := r[0].I
		w, ok := want[key]
		if !ok {
			t.Fatalf("unexpected group %d", key)
		}
		if r[1].I != int64(w[0]) {
			t.Errorf("group %d count = %d, want %g", key, r[1].I, w[0])
		}
		if r[2].F != w[1] {
			t.Errorf("group %d sum = %g, want %g", key, r[2].F, w[1])
		}
	}
	if err := c.CheckViewConsistency(name); err != nil {
		t.Fatal(err)
	}
}

func TestAggViewSchemaAndBackfill(t *testing.T) {
	c := newTPCR(t, 4, 8, 3, 1)
	v := aggViewDef("av", catalog.StrategyNaive)
	if err := c.CreateView(v); err != nil {
		t.Fatal(err)
	}
	names := v.Schema.Names()
	if len(names) != 3 || names[0] != "customer.custkey" || names[1] != "count" || names[2] != "sum(orders.totalprice)" {
		t.Fatalf("agg schema = %v", names)
	}
	if !v.IsAggregate() || v.CountIndex() != 1 {
		t.Errorf("IsAggregate/CountIndex wrong: %d", v.CountIndex())
	}
	checkAggView(t, c, "av")
	// 8 customers, 3 orders each -> 8 groups with count 3.
	rows, _ := c.ViewRows("av")
	if len(rows) != 8 || rows[0][1].I != 3 {
		t.Fatalf("backfill groups = %v", rows)
	}
}

func TestAggViewMaintenanceAllStrategies(t *testing.T) {
	for _, strat := range allStrategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			c := newTPCR(t, 4, 6, 2, 1)
			if err := c.CreateView(aggViewDef("av", strat)); err != nil {
				t.Fatal(err)
			}
			// New customer matching nothing: no group.
			noErr(t, c.Insert("customer", []types.Tuple{cust(100, 1)}))
			// Orders for existing and new customers: counts fold in.
			noErr(t, c.Insert("orders", []types.Tuple{
				ord(500, 0, 10), ord(501, 0, 20), ord(502, 100, 5),
			}))
			checkAggView(t, c, "av")
			// Deleting one order decrements; deleting the only order of a
			// group removes the group.
			_, err := c.Delete("orders", expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "orderkey"}, R: expr.Const{V: types.Int(502)}})
			noErr(t, err)
			checkAggView(t, c, "av")
			rows, _ := c.ViewRows("av")
			for _, r := range rows {
				if r[0].I == 100 {
					t.Error("empty group should have been removed")
				}
			}
			// Deleting a customer removes its whole group.
			_, err = c.Delete("customer", expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "custkey"}, R: expr.Const{V: types.Int(0)}})
			noErr(t, err)
			checkAggView(t, c, "av")
			// Updating a measure re-folds sums.
			_, err = c.Update("orders", map[string]types.Value{"totalprice": types.Float(1)},
				expr.Cmp{Op: expr.LT, L: expr.Col{Name: "orderkey"}, R: expr.Const{V: types.Int(3)}})
			noErr(t, err)
			checkAggView(t, c, "av")
			// Updating a join key moves counts between groups.
			_, err = c.Update("orders", map[string]types.Value{"custkey": types.Int(1)},
				expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "custkey"}, R: expr.Const{V: types.Int(2)}})
			noErr(t, err)
			checkAggView(t, c, "av")
		})
	}
}

func TestAggViewTransactionRollback(t *testing.T) {
	c := newTPCR(t, 4, 4, 2, 1)
	if err := c.CreateView(aggViewDef("av", catalog.StrategyAuxRel)); err != nil {
		t.Fatal(err)
	}
	before, _ := c.ViewRows("av")
	tx := c.Begin()
	noErr(t, tx.Insert("orders", []types.Tuple{ord(700, 1, 50)}))
	if _, err := tx.Delete("customer", expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "custkey"}, R: expr.Const{V: types.Int(2)}}); err != nil {
		t.Fatal(err)
	}
	noErr(t, tx.Rollback())
	checkAggView(t, c, "av")
	after, _ := c.ViewRows("av")
	if len(after) != len(before) {
		t.Errorf("groups after rollback = %d, want %d", len(after), len(before))
	}
}

func TestAggViewValidation(t *testing.T) {
	c := newTPCR(t, 2, 2, 1, 1)
	// avg is rejected.
	v := aggViewDef("bad1", catalog.StrategyNaive)
	v.Aggs = []catalog.AggSpec{{Func: "avg", Table: "orders", Col: "totalprice"}}
	if err := c.CreateView(v); err == nil {
		t.Error("avg should be rejected (not self-maintainable)")
	}
	// sum over a string column is rejected (needs a schema with one).
	v2 := aggViewDef("bad2", catalog.StrategyNaive)
	v2.Aggs = []catalog.AggSpec{{Func: "sum", Table: "orders", Col: "ghost"}}
	if err := c.CreateView(v2); err == nil {
		t.Error("sum over unknown column should fail")
	}
	// count with a column is rejected.
	v3 := aggViewDef("bad3", catalog.StrategyNaive)
	v3.Aggs = []catalog.AggSpec{{Func: "count", Table: "orders", Col: "orderkey"}}
	if err := c.CreateView(v3); err == nil {
		t.Error("count with a column should fail")
	}
	// Aggregate view without GROUP BY columns is rejected.
	v4 := aggViewDef("bad4", catalog.StrategyNaive)
	v4.Out = nil
	if err := c.CreateView(v4); err == nil {
		t.Error("aggregate view without group columns should fail")
	}
	// Missing count is auto-added.
	v5 := aggViewDef("av5", catalog.StrategyNaive)
	v5.Aggs = []catalog.AggSpec{{Func: "sum", Table: "orders", Col: "totalprice"}}
	if err := c.CreateView(v5); err != nil {
		t.Fatal(err)
	}
	if v5.CountIndex() < 0 {
		t.Error("count aggregate should have been appended")
	}
	// sum over a table outside FROM.
	v6 := aggViewDef("bad6", catalog.StrategyNaive)
	v6.Aggs = []catalog.AggSpec{{Func: "sum", Table: "lineitem", Col: "extendedprice"}}
	if err := c.CreateView(v6); err == nil {
		t.Error("sum over a table outside FROM should fail")
	}
}

func TestAggViewRandomizedStream(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized test")
	}
	c := newTPCR(t, 4, 6, 2, 1)
	for i, strat := range allStrategies {
		if err := c.CreateView(aggViewDef(fmt.Sprintf("av%d", i), strat)); err != nil {
			t.Fatal(err)
		}
	}
	rng := newRand(99)
	nextOK := int64(1000)
	for step := 0; step < 40; step++ {
		switch rng.Intn(4) {
		case 0:
			nextOK++
			noErr(t, c.Insert("orders", []types.Tuple{ord(nextOK, int64(rng.Intn(10)), float64(rng.Intn(50)))}))
		case 1:
			noErr(t, c.Insert("customer", []types.Tuple{cust(int64(rng.Intn(12)), 1)}))
		case 2:
			_, err := c.Delete("orders", expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "custkey"}, R: expr.Const{V: types.Int(int64(rng.Intn(10)))}})
			noErr(t, err)
		case 3:
			_, err := c.Update("orders", map[string]types.Value{"custkey": types.Int(int64(rng.Intn(8)))},
				expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "orderkey"}, R: expr.Const{V: types.Int(int64(rng.Intn(20)))}})
			noErr(t, err)
		}
		if step%10 == 9 {
			for i := range allStrategies {
				if err := c.CheckViewConsistency(fmt.Sprintf("av%d", i)); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
		}
	}
	for i := range allStrategies {
		if err := c.CheckViewConsistency(fmt.Sprintf("av%d", i)); err != nil {
			t.Fatal(err)
		}
	}
}
