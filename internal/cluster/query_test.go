package cluster

import (
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/types"
)

func jv1Spec() QuerySpec {
	return QuerySpec{
		Tables: []string{"customer", "orders"},
		Joins: []catalog.JoinPred{
			{Left: "customer", LeftCol: "custkey", Right: "orders", RightCol: "custkey"},
		},
		Out: []catalog.OutCol{
			{Table: "customer", Col: "custkey"}, {Table: "customer", Col: "acctbal"},
			{Table: "orders", Col: "orderkey"}, {Table: "orders", Col: "totalprice"},
		},
	}
}

func TestQueryJoinMatchesView(t *testing.T) {
	c := newTPCR(t, 4, 10, 2, 2)
	if err := c.CreateView(jv1Def("jv1", catalog.StrategyNaive)); err != nil {
		t.Fatal(err)
	}
	rows, schema, err := c.QueryJoin(jv1Spec())
	if err != nil {
		t.Fatal(err)
	}
	if schema.Len() != 4 || schema.Names()[0] != "customer.custkey" {
		t.Errorf("schema = %v", schema.Names())
	}
	want, err := c.ViewRows("jv1")
	if err != nil {
		t.Fatal(err)
	}
	if err := bagEqual(rows, want); err != nil {
		t.Fatalf("query vs view: %v (%d vs %d rows)", err, len(rows), len(want))
	}
	// Temps are dropped: a second run succeeds identically.
	rows2, _, err := c.QueryJoin(jv1Spec())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != len(rows) {
		t.Errorf("second run = %d rows", len(rows2))
	}
}

func TestQueryJoinThreeWay(t *testing.T) {
	c := newTPCR(t, 4, 6, 2, 3)
	spec := QuerySpec{
		Tables: []string{"customer", "orders", "lineitem"},
		Joins: []catalog.JoinPred{
			{Left: "customer", LeftCol: "custkey", Right: "orders", RightCol: "custkey"},
			{Left: "orders", LeftCol: "orderkey", Right: "lineitem", RightCol: "orderkey"},
		},
		Out: []catalog.OutCol{
			{Table: "customer", Col: "custkey"},
			{Table: "orders", Col: "orderkey"},
			{Table: "lineitem", Col: "extendedprice"},
		},
	}
	rows, _, err := c.QueryJoin(spec)
	if err != nil {
		t.Fatal(err)
	}
	// 6 customers × 2 orders × 3 lineitems = 36.
	if len(rows) != 36 {
		t.Fatalf("query returned %d rows, want 36", len(rows))
	}
}

func TestQueryJoinReusesAuxRel(t *testing.T) {
	c := newTPCR(t, 4, 10, 2, 1)
	// Without an AR: the orders side must shuffle.
	c.ResetMetrics()
	if _, _, err := c.QueryJoin(jv1Spec()); err != nil {
		t.Fatal(err)
	}
	withoutAR := c.Metrics().Total().Inserts
	// Create a full-width AR on orders.custkey; the query reuses it as
	// the pre-partitioned copy, eliminating the orders shuffle writes.
	if err := c.CreateAuxRel(&catalog.AuxRel{Name: "orders_copy", Table: "orders", PartitionCol: "custkey"}); err != nil {
		t.Fatal(err)
	}
	c.ResetMetrics()
	rows, _, err := c.QueryJoin(jv1Spec())
	if err != nil {
		t.Fatal(err)
	}
	withAR := c.Metrics().Total().Inserts
	if withAR >= withoutAR {
		t.Errorf("AR reuse should cut shuffle inserts: %d vs %d", withAR, withoutAR)
	}
	if len(rows) != 20 { // 10 customers × 2 orders
		t.Errorf("rows = %d, want 20", len(rows))
	}
}

func TestQueryJoinFullWidthDefaultProjection(t *testing.T) {
	c := newTPCR(t, 2, 3, 1, 1)
	spec := jv1Spec()
	spec.Out = nil
	rows, schema, err := c.QueryJoin(spec)
	if err != nil {
		t.Fatal(err)
	}
	// customer(2) + orders(3) columns.
	if schema.Len() != 5 {
		t.Errorf("schema = %v", schema.Names())
	}
	if len(rows) != 3 {
		t.Errorf("rows = %d", len(rows))
	}
}

func TestQueryJoinCyclic(t *testing.T) {
	c := triangleCluster(t, catalog.StrategyNaive)
	rows, _, err := c.QueryJoin(QuerySpec{
		Tables: []string{"ta", "tb", "tc"},
		Joins: []catalog.JoinPred{
			{Left: "ta", LeftCol: "x", Right: "tb", RightCol: "x"},
			{Left: "tb", LeftCol: "y", Right: "tc", RightCol: "y"},
			{Left: "tc", LeftCol: "z", Right: "ta", RightCol: "z"},
		},
		Out: []catalog.OutCol{
			{Table: "ta", Col: "pk"}, {Table: "tb", Col: "pk"}, {Table: "tc", Col: "pk"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := refTriangle(t, c)
	if err := bagEqual(rows, want); err != nil {
		t.Fatalf("cyclic query: %v", err)
	}
}

func TestQueryJoinErrors(t *testing.T) {
	c := newTPCR(t, 2, 2, 1, 1)
	if _, _, err := c.QueryJoin(QuerySpec{}); err == nil {
		t.Error("empty query should fail")
	}
	if _, _, err := c.QueryJoin(QuerySpec{Tables: []string{"ghost"}}); err == nil {
		t.Error("unknown table should fail")
	}
	if _, _, err := c.QueryJoin(QuerySpec{Tables: []string{"customer", "lineitem"}}); err == nil {
		t.Error("disconnected join should fail")
	}
	if _, _, err := c.QueryJoin(QuerySpec{
		Tables: []string{"customer", "orders"},
		Joins:  []catalog.JoinPred{{Left: "customer", LeftCol: "custkey", Right: "orders", RightCol: "custkey"}},
		Out:    []catalog.OutCol{{Table: "customer", Col: "ghost"}},
	}); err == nil {
		t.Error("bad projection should fail")
	}
}

// The economics of materialization: scanning the maintained view costs far
// less than recomputing the join, which is the reason the warehouse pays
// the maintenance costs this whole study is about.
func TestViewScanBeatsQueryJoin(t *testing.T) {
	c := newTPCR(t, 4, 20, 2, 1)
	if err := c.CreateView(jv1Def("jv1", catalog.StrategyAuxRel)); err != nil {
		t.Fatal(err)
	}
	c.ResetMetrics()
	viaQuery, _, err := c.QueryJoin(jv1Spec())
	if err != nil {
		t.Fatal(err)
	}
	queryIOs := c.Metrics().TotalIOs()
	c.ResetMetrics()
	viaView, err := c.ScanFragmentMetered("jv1")
	if err != nil {
		t.Fatal(err)
	}
	viewIOs := c.Metrics().TotalIOs()
	if err := bagEqual(viaQuery, viaView); err != nil {
		t.Fatalf("query and view disagree: %v", err)
	}
	if viewIOs >= queryIOs {
		t.Errorf("view scan (%d I/Os) should beat the join query (%d I/Os)", viewIOs, queryIOs)
	}
}

func TestSortQualifiedHelper(t *testing.T) {
	rows := []types.Tuple{{types.Int(2)}, {types.Int(1)}}
	sortQualified(rows)
	if rows[0][0].I != 1 {
		t.Error("sortQualified failed")
	}
}
