package cluster

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/expr"
	"joinview/internal/types"
)

// TestPlanCacheSteadyStateHitRate pins the pipeline's core economics: a
// steady single-table insert stream compiles once and reuses the plan for
// every later statement (>99% hit rate), even though every statement bumps
// the updated table's own row statistic.
func TestPlanCacheSteadyStateHitRate(t *testing.T) {
	c := newTPCR(t, 4, 8, 2, 2)
	if err := c.CreateView(jv1Def("jv1", catalog.StrategyAuto)); err != nil {
		t.Fatal(err)
	}
	c.ResetMetrics()
	const n = 200
	for i := 0; i < n; i++ {
		if err := c.Insert("customer", []types.Tuple{cust(int64(10_000+i), 1)}); err != nil {
			t.Fatal(err)
		}
	}
	p := c.Metrics().Pipeline
	if p.PlanCacheHits+p.PlanCacheMisses != n {
		t.Fatalf("want %d lookups, got %d hits + %d misses", n, p.PlanCacheHits, p.PlanCacheMisses)
	}
	if p.PlanCacheMisses > 1 {
		t.Errorf("steady-state stream recompiled %d times (want at most 1)", p.PlanCacheMisses)
	}
	if hr := p.HitRate(); hr <= 0.99 {
		t.Errorf("hit rate %.4f, want > 0.99", hr)
	}
}

// TestPlanCacheDDLInvalidation checks that CREATE/DROP VIEW and DROP TABLE
// bump the catalog version and evict compiled plans, and that a stale plan
// never executes: maintenance always reflects the catalog as of the
// statement, not as of the last compile.
func TestPlanCacheDDLInvalidation(t *testing.T) {
	c := newTPCR(t, 4, 8, 2, 2)

	// Warm the insert plan before any view exists.
	if err := c.Insert("customer", []types.Tuple{cust(100, 1)}); err != nil {
		t.Fatal(err)
	}
	v0 := c.Catalog().Version()

	// CREATE VIEW must invalidate: the very next insert has to maintain
	// the new view. A stale (view-less) plan would silently skip it.
	if err := c.CreateView(jv1Def("jv1", catalog.StrategyAuto)); err != nil {
		t.Fatal(err)
	}
	if v := c.Catalog().Version(); v <= v0 {
		t.Fatalf("CreateView did not bump catalog version: %d -> %d", v0, v)
	}
	before := c.Metrics().Pipeline
	if err := c.Insert("orders", []types.Tuple{ord(900, 100, 5)}); err != nil {
		t.Fatal(err)
	}
	if d := c.Metrics().Pipeline.Sub(before); d.PlanCacheMisses != 1 {
		t.Errorf("insert after CREATE VIEW: want 1 miss (recompile), got %+v", d)
	}
	if err := c.CheckViewConsistency("jv1"); err != nil {
		t.Fatalf("view missed a delta after CREATE VIEW: %v", err)
	}

	// DROP VIEW must invalidate too: a stale plan would try to maintain
	// the dropped view's fragments.
	v1 := c.Catalog().Version()
	if err := c.DropView("jv1"); err != nil {
		t.Fatal(err)
	}
	if v := c.Catalog().Version(); v <= v1 {
		t.Fatalf("DropView did not bump catalog version: %d -> %d", v1, v)
	}
	if err := c.Insert("customer", []types.Tuple{cust(101, 1)}); err != nil {
		t.Fatalf("insert after DROP VIEW executed a stale plan: %v", err)
	}

	// DROP TABLE invalidates every plan (catalog-version keyed): inserts
	// into the surviving tables recompile, not crash.
	v2 := c.Catalog().Version()
	if err := c.DropTable("lineitem"); err != nil {
		t.Fatal(err)
	}
	if v := c.Catalog().Version(); v <= v2 {
		t.Fatalf("DropTable did not bump catalog version: %d -> %d", v2, v)
	}
	before = c.Metrics().Pipeline
	if err := c.Insert("customer", []types.Tuple{cust(102, 1)}); err != nil {
		t.Fatal(err)
	}
	if d := c.Metrics().Pipeline.Sub(before); d.PlanCacheMisses != 1 {
		t.Errorf("insert after DROP TABLE: want 1 miss (recompile), got %+v", d)
	}

	// And a plan for the dropped table itself can no longer be obtained.
	if err := c.Insert("lineitem", []types.Tuple{li(1, 1, 1)}); err == nil {
		t.Error("insert into dropped table succeeded")
	}
}

// TestPlanCacheStatsInvalidation checks the fanout-dependency guard: when
// the statistics of a *probed* table change, the cached plan (whose join
// order and fan-out hints came from those statistics) is recompiled, so
// the pipeline plans exactly like per-statement planning would.
func TestPlanCacheStatsInvalidation(t *testing.T) {
	c := newTPCR(t, 4, 8, 2, 2)
	if err := c.CreateView(jv1Def("jv1", catalog.StrategyAuto)); err != nil {
		t.Fatal(err)
	}
	// Warm the orders-insert plan; it probes customer.custkey.
	if err := c.Insert("orders", []types.Tuple{ord(901, 1, 5)}); err != nil {
		t.Fatal(err)
	}
	before := c.Metrics().Pipeline
	if err := c.Insert("orders", []types.Tuple{ord(902, 2, 5)}); err != nil {
		t.Fatal(err)
	}
	if d := c.Metrics().Pipeline.Sub(before); d.PlanCacheHits != 1 {
		t.Fatalf("warm plan not reused: %+v", d)
	}
	// Shift the probed table's fan-out (same custkey for all rows halves
	// the distinct count the planner saw) and refresh: the next
	// orders-insert must recompile against the new statistics.
	ts, ok := c.Stats().Get("customer")
	if !ok {
		t.Fatal("no customer statistics")
	}
	ts.Distinct["custkey"] = ts.Distinct["custkey"] / 2
	c.Stats().Set("customer", ts)
	before = c.Metrics().Pipeline
	if err := c.Insert("orders", []types.Tuple{ord(903, 3, 5)}); err != nil {
		t.Fatal(err)
	}
	if d := c.Metrics().Pipeline.Sub(before); d.PlanCacheMisses != 1 {
		t.Errorf("statistics drift on probed table not detected: %+v", d)
	}
	// The updated table's own statistics do NOT invalidate its plans:
	// bumpRows moved customer.Rows on every customer insert above, and
	// customer inserts keep hitting.
	if err := c.Insert("customer", []types.Tuple{cust(200, 1)}); err != nil {
		t.Fatal(err)
	}
	before = c.Metrics().Pipeline
	if err := c.Insert("customer", []types.Tuple{cust(201, 1)}); err != nil {
		t.Fatal(err)
	}
	if d := c.Metrics().Pipeline.Sub(before); d.PlanCacheHits != 1 {
		t.Errorf("self-statistics bump evicted the plan: %+v", d)
	}
}

// TestPlanCacheDisabled checks the escape hatch: with DisablePlanCache
// every statement compiles fresh and every lookup counts as a miss, while
// results stay identical.
func TestPlanCacheDisabled(t *testing.T) {
	c, err := New(Config{Nodes: 4, DisablePlanCache: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.CreateTable(customerTable()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Insert("customer", []types.Tuple{cust(int64(i), 1)}); err != nil {
			t.Fatal(err)
		}
	}
	p := c.Metrics().Pipeline
	if p.PlanCacheHits != 0 || p.PlanCacheMisses != 5 {
		t.Errorf("disabled cache: want 0 hits / 5 misses, got %d / %d", p.PlanCacheHits, p.PlanCacheMisses)
	}
	if c.PlanCacheLen() != 0 {
		t.Errorf("disabled cache stored %d plans", c.PlanCacheLen())
	}
}

// TestPlanCacheConcurrentSessionsAndDDL races concurrent writer sessions
// (hitting their cached plans) against repeated CREATE/DROP VIEW DDL
// (bumping the catalog version) and verifies no stale plan ever executes:
// every view reflects exactly the base rows at the end, and -race must
// stay clean across cache lookups, evictions and recompiles.
func TestPlanCacheConcurrentSessionsAndDDL(t *testing.T) {
	const sessions, stmts, ddlRounds = 4, 10, 8
	c := newSessionSchemas(t, 4, sessions, catalog.StrategyAuto)

	// The DDL victim: an extra schema whose view is created and dropped
	// while the sessions run.
	if err := c.CreateTable(&catalog.Table{
		Name: "extra",
		Schema: types.NewSchema(
			types.Column{Name: "id", Kind: types.KindInt},
			types.Column{Name: "c", Kind: types.KindInt},
		),
		PartitionCol: "id",
	}); err != nil {
		t.Fatal(err)
	}
	extraView := func() *catalog.View {
		return &catalog.View{
			Name:   "jv_extra",
			Tables: []string{"extra", "b0"},
			Joins:  []catalog.JoinPred{{Left: "extra", LeftCol: "c", Right: "b0", RightCol: "d"}},
			Out: []catalog.OutCol{
				{Table: "extra", Col: "id"}, {Table: "extra", Col: "c"}, {Table: "b0", Col: "id"},
			},
			PartitionTable: "extra", PartitionCol: "id",
			Strategy: catalog.StrategyAuto,
		}
	}

	errs := make([]error, sessions+1)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			table := fmt.Sprintf("a%d", s)
			for j := 0; j < stmts; j++ {
				base := int64(1000*(s+1) + 10*j)
				if err := c.Insert(table, []types.Tuple{
					{types.Int(base), types.Int(int64(j % 16))},
				}); err != nil {
					errs[s] = err
					return
				}
				if j%2 == 1 {
					if _, err := c.Delete(table, expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "id"}, R: expr.Const{V: types.Int(base)}}); err != nil {
						errs[s] = err
						return
					}
				}
			}
		}(s)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < ddlRounds; r++ {
			if err := c.CreateView(extraView()); err != nil {
				errs[sessions] = err
				return
			}
			if err := c.Insert("extra", []types.Tuple{
				{types.Int(int64(9000 + r)), types.Int(int64(r % 16))},
			}); err != nil {
				errs[sessions] = err
				return
			}
			if err := c.CheckViewConsistency("jv_extra"); err != nil {
				errs[sessions] = fmt.Errorf("round %d: %w", r, err)
				return
			}
			if err := c.DropView("jv_extra"); err != nil {
				errs[sessions] = err
				return
			}
		}
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	if err := c.CheckAllStructures(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < sessions; s++ {
		if err := c.CheckViewConsistency(fmt.Sprintf("jv%d", s)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPipelineStageCounters checks the per-stage breakdown: in a serial
// execution mode every stage's pages and messages are attributed, and the
// stage kinds cover base, auxrel, globalindex and view for a fully
// equipped table.
func TestPipelineStageCounters(t *testing.T) {
	c := newTPCR(t, 4, 8, 2, 2)
	v := jv1Def("jv1", catalog.StrategyAuto)
	if err := c.CreateView(v); err != nil {
		t.Fatal(err)
	}
	c.ResetMetrics()
	// orders is not partitioned on custkey, so the auto view keeps both an
	// AR and a GI on orders; inserting into orders exercises every stage
	// kind.
	if err := c.Insert("orders", []types.Tuple{ord(910, 1, 5), ord(911, 2, 5)}); err != nil {
		t.Fatal(err)
	}
	p := c.Metrics().Pipeline
	for _, kind := range []string{"base", "view"} {
		sc, ok := p.Stages[kind]
		if !ok || sc.Executions == 0 {
			t.Fatalf("stage %q did not run: %+v", kind, p.Stages)
		}
		if sc.Pages == 0 {
			t.Errorf("stage %q attributed no pages in serial mode", kind)
		}
	}
	var stageSum int64
	for _, sc := range p.Stages {
		stageSum += sc.Pages
	}
	if total := c.Metrics().TotalIOs(); stageSum != total {
		t.Errorf("per-stage pages %d != total I/Os %d (serial attribution must be exact)", stageSum, total)
	}
}

// TestPipelineExplain smoke-tests the pipeline EXPLAIN surface.
func TestPipelineExplain(t *testing.T) {
	c := newTPCR(t, 4, 8, 2, 2)
	if err := c.CreateView(jv1Def("jv1", catalog.StrategyAuto)); err != nil {
		t.Fatal(err)
	}
	out, err := c.ExplainPipeline("orders", "insert")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pipeline for insert into orders", "base", "view", "jv1"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	if _, err := c.ExplainPipeline("orders", "upsert"); err == nil {
		t.Error("unknown op accepted")
	}
}
