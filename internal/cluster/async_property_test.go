package cluster

import (
	"fmt"
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/types"
)

// TestAsyncCompactionEquivalence is the compaction property test: a
// random stream of inserts, deletes and updates applied through the
// epoch-compacted async queue must leave exactly the same base tables and
// view as the same stream applied with uncompacted per-statement
// maintenance — insert/delete cancellation and repeated-key collapse are
// invisible in the final state. Flush points are injected at random, so
// epochs of many shapes (including fully-cancelled ones) are exercised.
func TestAsyncCompactionEquivalence(t *testing.T) {
	for _, seed := range []int64{7, 23, 1229} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			sync := newAsyncPropCluster(t, false)
			async := newAsyncPropCluster(t, true)
			rng := newRand(seed)

			nextKey := int64(5000)
			var live []int64 // keys inserted by the stream, possibly deleted again
			for step := 0; step < 120; step++ {
				switch op := rng.Intn(10); {
				case op < 4: // insert a fresh order
					nextKey++
					tup := ord(nextKey, rng.Int63n(8), float64(rng.Intn(500)))
					for _, c := range []*Cluster{sync, async} {
						if err := c.Insert("orders", []types.Tuple{tup}); err != nil {
							t.Fatalf("step %d insert: %v", step, err)
						}
					}
					live = append(live, nextKey)
				case op < 7: // delete a stream key (often still queued: cancellation)
					if len(live) == 0 {
						continue
					}
					i := rng.Intn(len(live))
					k := live[i]
					live = append(live[:i], live[i+1:]...)
					var want int
					for ci, c := range []*Cluster{sync, async} {
						got, err := c.Delete("orders", eqOrderKey(k))
						if err != nil {
							t.Fatalf("step %d delete %d: %v", step, k, err)
						}
						if ci == 0 {
							want = len(got)
						} else if len(got) != want {
							t.Fatalf("step %d delete %d: async found %d victims, sync %d", step, k, len(got), want)
						}
					}
				case op < 9: // update a stream key (repeated-key collapse)
					if len(live) == 0 {
						continue
					}
					k := live[rng.Intn(len(live))]
					set := map[string]types.Value{"totalprice": types.Float(float64(rng.Intn(1000)))}
					var want int
					for ci, c := range []*Cluster{sync, async} {
						n, err := c.Update("orders", set, eqOrderKey(k))
						if err != nil {
							t.Fatalf("step %d update %d: %v", step, k, err)
						}
						if ci == 0 {
							want = n
						} else if n != want {
							t.Fatalf("step %d update %d: async matched %d, sync %d", step, k, n, want)
						}
					}
				default: // random epoch boundary
					if err := async.Flush(); err != nil {
						t.Fatalf("step %d flush: %v", step, err)
					}
				}
			}
			if err := async.Flush(); err != nil {
				t.Fatal(err)
			}

			for _, frag := range []string{"orders", "jv1"} {
				want, err := sync.TableRows(frag)
				if frag == "jv1" {
					want, err = sync.ViewRows(frag)
				}
				if err != nil {
					t.Fatal(err)
				}
				got, err := async.TableRows(frag)
				if frag == "jv1" {
					got, err = async.ViewRows(frag)
				}
				if err != nil {
					t.Fatal(err)
				}
				assertBagEqual(t, frag+" compacted vs per-statement", got, want)
			}
			if err := async.CheckViewConsistency("jv1"); err != nil {
				t.Fatal(err)
			}
			if err := async.CheckAllStructures(); err != nil {
				t.Fatal(err)
			}
			if m := async.Metrics(); m.Queue.DeltasCancelled == 0 {
				t.Error("stream produced no cancellations; widen the mix")
			}
		})
	}
}

// newAsyncPropCluster builds the equivalence twins: identical layout and
// load, differing only in maintenance deferral.
func newAsyncPropCluster(t *testing.T, async bool) *Cluster {
	t.Helper()
	c, err := New(Config{Nodes: 4, AsyncMaintenance: async})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for _, tab := range []*catalog.Table{customerTable(), ordersTable(), lineitemTable()} {
		if err := c.CreateTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	var customers, orders []types.Tuple
	ok := int64(0)
	for ck := int64(0); ck < 8; ck++ {
		customers = append(customers, cust(ck, float64(ck)*1.5))
		for o := 0; o < 2; o++ {
			ok++
			orders = append(orders, ord(ok, ck, float64(ok)*10))
		}
	}
	if err := c.Insert("customer", customers); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("orders", orders); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"customer", "orders", "lineitem"} {
		if err := c.RefreshStats(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateView(jv1Def("jv1", catalog.StrategyAuto)); err != nil {
		t.Fatal(err)
	}
	return c
}
