package cluster

import (
	"fmt"
	"sync"
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/expr"
	"joinview/internal/types"
)

// newSessionSchemas builds a parallel-dispatch cluster with k independent
// two-relation schemas a<i> ⋈ b<i> = jv<i>, each b<i> pre-loaded, so k
// sessions can run statements with disjoint lock claims.
func newSessionSchemas(t *testing.T, nodes, k int, strategy catalog.Strategy) *Cluster {
	t.Helper()
	c, err := New(Config{Nodes: nodes, UseChannels: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for i := 0; i < k; i++ {
		an, bn, vn := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i), fmt.Sprintf("jv%d", i)
		if err := c.CreateTable(&catalog.Table{
			Name: an,
			Schema: types.NewSchema(
				types.Column{Name: "id", Kind: types.KindInt},
				types.Column{Name: "c", Kind: types.KindInt},
			),
			PartitionCol: "id",
		}); err != nil {
			t.Fatal(err)
		}
		if err := c.CreateTable(&catalog.Table{
			Name: bn,
			Schema: types.NewSchema(
				types.Column{Name: "id", Kind: types.KindInt},
				types.Column{Name: "d", Kind: types.KindInt},
			),
			PartitionCol: "id",
			Indexes:      []catalog.Index{{Name: "ix_" + bn + "_d", Col: "d"}},
		}); err != nil {
			t.Fatal(err)
		}
		var rows []types.Tuple
		for v := int64(0); v < 16; v++ {
			for f := int64(0); f < 3; f++ {
				rows = append(rows, types.Tuple{types.Int(v*3 + f), types.Int(v)})
			}
		}
		if err := c.Insert(bn, rows); err != nil {
			t.Fatal(err)
		}
		if err := c.CreateView(&catalog.View{
			Name:   vn,
			Tables: []string{an, bn},
			Joins:  []catalog.JoinPred{{Left: an, LeftCol: "c", Right: bn, RightCol: "d"}},
			Out: []catalog.OutCol{
				{Table: an, Col: "id"}, {Table: an, Col: "c"}, {Table: bn, Col: "id"},
			},
			PartitionTable: an, PartitionCol: "id",
			Strategy: strategy,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestConcurrentSessionsConsistency drives k concurrent sessions of mixed
// Insert/Update/Delete statements on independent schemas through the lock
// manager with parallel scatter-gather dispatch, then verifies every
// derived structure (auxiliary relations, global indexes, views). Run with
// -race to check the dispatcher and lock manager for data races.
func TestConcurrentSessionsConsistency(t *testing.T) {
	const sessions, stmts = 4, 12
	for _, strategy := range []catalog.Strategy{catalog.StrategyAuxRel, catalog.StrategyGlobalIndex, catalog.StrategyAuto} {
		t.Run(strategy.String(), func(t *testing.T) {
			c := newSessionSchemas(t, 4, sessions, strategy)
			errs := make([]error, sessions)
			var wg sync.WaitGroup
			for s := 0; s < sessions; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					table := fmt.Sprintf("a%d", s)
					for j := 0; j < stmts; j++ {
						base := int64(1000*(s+1) + 100*j)
						batch := []types.Tuple{
							{types.Int(base), types.Int(int64(j % 16))},
							{types.Int(base + 1), types.Int(int64((j + 5) % 16))},
						}
						if err := c.Insert(table, batch); err != nil {
							errs[s] = err
							return
						}
						if _, err := c.Update(table,
							map[string]types.Value{"c": types.Int(int64((j + 9) % 16))},
							expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "id"}, R: expr.Const{V: types.Int(base)}}); err != nil {
							errs[s] = err
							return
						}
						if j%3 == 2 {
							if _, err := c.Delete(table, expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "id"}, R: expr.Const{V: types.Int(base + 1)}}); err != nil {
								errs[s] = err
								return
							}
						}
					}
				}(s)
			}
			wg.Wait()
			for s, err := range errs {
				if err != nil {
					t.Fatalf("session %d: %v", s, err)
				}
			}
			if err := c.CheckAllStructures(); err != nil {
				t.Fatal(err)
			}
			for s := 0; s < sessions; s++ {
				if err := c.CheckViewConsistency(fmt.Sprintf("jv%d", s)); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestUpdateEmptyVictimScan pins the regression the statement-scoped
// victim scan fixed: an Update (or Delete) whose predicate matches nothing
// must behave as an empty statement — same metered cost as the equivalent
// empty Delete, no residual transaction state — rather than running its
// scan outside the statement scope.
func TestUpdateEmptyVictimScan(t *testing.T) {
	c := newSessionSchemas(t, 4, 1, catalog.StrategyAuxRel)
	if err := c.Insert("a0", []types.Tuple{{types.Int(1), types.Int(2)}}); err != nil {
		t.Fatal(err)
	}
	none := expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "id"}, R: expr.Const{V: types.Int(99999)}}

	before := c.Metrics()
	n, err := c.Update("a0", map[string]types.Value{"c": types.Int(3)}, none)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("empty update affected %d rows", n)
	}
	updCost := c.Metrics().Sub(before)

	before = c.Metrics()
	gone, err := c.Delete("a0", none)
	if err != nil {
		t.Fatal(err)
	}
	if len(gone) != 0 {
		t.Fatalf("empty delete removed %d rows", len(gone))
	}
	delCost := c.Metrics().Sub(before)

	if updCost.TotalIOs() != delCost.TotalIOs() || updCost.Net.Messages != delCost.Net.Messages {
		t.Errorf("empty update cost (ios=%d msgs=%d) != empty delete cost (ios=%d msgs=%d)",
			updCost.TotalIOs(), updCost.Net.Messages, delCost.TotalIOs(), delCost.Net.Messages)
	}
	if err := c.CheckAllStructures(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentQueriesAndDML runs read queries against one schema while
// another schema takes writes: shared claims must let the query run and
// the cluster-wide temp-fragment counter must keep concurrent QueryJoin
// intermediates from colliding.
func TestConcurrentQueriesAndDML(t *testing.T) {
	c := newSessionSchemas(t, 4, 2, catalog.StrategyAuxRel)
	if err := c.Insert("a0", []types.Tuple{{types.Int(500), types.Int(1)}, {types.Int(501), types.Int(2)}}); err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{
		Tables: []string{"a0", "b0"},
		Joins:  []catalog.JoinPred{{Left: "a0", LeftCol: "c", Right: "b0", RightCol: "d"}},
	}
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, _, err := c.QueryJoin(spec); err != nil {
					errs[q] = err
					return
				}
			}
		}(q)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 12; j++ {
			if err := c.Insert("a1", []types.Tuple{{types.Int(int64(700 + j)), types.Int(int64(j % 16))}}); err != nil {
				errs[2] = err
				return
			}
		}
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if err := c.CheckAllStructures(); err != nil {
		t.Fatal(err)
	}
}
