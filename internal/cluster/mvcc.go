package cluster

import (
	"sync"

	"joinview/internal/lockmgr"
)

// MVCC snapshot reads: the coordinator tracks one commit epoch per
// fragment name. A writer statement stamps every mutating request for a
// fragment with commit+1 — stable for the statement's whole run, because
// only the holder of the fragment's exclusive lockmgr claim can publish —
// and publishes (bumps) all its fragments' epochs atomically right before
// releasing its claims. A reader captures the committed epochs of every
// fragment it will touch in one atomic step, pins them against garbage
// collection, and reads each fragment at its pinned epoch; storage inverts
// the version-log suffix newer than the pin (storage/mvcc.go). Readers
// hold only the global shared lock (lockmgr.AcquireRead), so they never
// queue behind a writer and never block one; DDL, recovery and failover
// promotion still fence them via the global exclusive lock, and the
// migration cutover via the cluster's readFence.
//
// Committed epochs start at 1, so a snapshot epoch is never 0 — 0 is the
// wire value for "unversioned, read the live state" (temp fragments and
// every legacy path). Aborted statements never publish: their forward and
// undo records share one unpublished stamp and cancel in any snapshot.

// epochTracker is the coordinator's epoch authority.
type epochTracker struct {
	mu     sync.Mutex
	commit map[string]uint64         // fragment -> last published epoch
	pins   map[string]map[uint64]int // fragment -> pinned epoch -> readers

	// pubSets caches each table's publish set ({table} + its ARs + its
	// views), invalidated on catalog changes, so publishing a statement
	// costs no allocation on the hot path.
	setMu   sync.Mutex
	setVer  uint64
	pubSets map[string][]string
}

func newEpochTracker() *epochTracker {
	return &epochTracker{
		commit:  map[string]uint64{},
		pins:    map[string]map[uint64]int{},
		pubSets: map[string][]string{},
	}
}

func (e *epochTracker) committedLocked(frag string) uint64 {
	if v, ok := e.commit[frag]; ok {
		return v
	}
	return 1
}

// writeEpoch returns the stamp for a mutation of frag by the statement
// currently holding its exclusive claim: committed+1.
func (e *epochTracker) writeEpoch(frag string) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.committedLocked(frag) + 1
}

// publish bumps the committed epoch of every fragment in the set in one
// atomic step: a concurrent reader pins either all pre-statement or all
// post-statement epochs.
func (e *epochTracker) publish(frags []string) {
	e.mu.Lock()
	for _, f := range frags {
		e.commit[f] = e.committedLocked(f) + 1
	}
	e.mu.Unlock()
}

// floor returns the garbage-collection floor for frag: version records
// stamped at or below it reconstruct no pinned snapshot and may be
// dropped. With no pins that is the committed epoch itself — a snapshot
// at epoch E only needs the records newer than E.
func (e *epochTracker) floor(frag string) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	fl := e.committedLocked(frag)
	for ep := range e.pins[frag] {
		if ep < fl {
			fl = ep
		}
	}
	return fl
}

// epochSnap is one reader's pinned snapshot.
type epochSnap struct {
	e      *epochTracker
	epochs map[string]uint64
}

// snapshot atomically captures and pins the committed epoch of every
// named fragment.
func (e *epochTracker) snapshot(frags []string) *epochSnap {
	s := &epochSnap{e: e, epochs: make(map[string]uint64, len(frags))}
	e.mu.Lock()
	for _, f := range frags {
		if _, dup := s.epochs[f]; dup {
			continue
		}
		ep := e.committedLocked(f)
		s.epochs[f] = ep
		p := e.pins[f]
		if p == nil {
			p = map[uint64]int{}
			e.pins[f] = p
		}
		p[ep]++
	}
	e.mu.Unlock()
	return s
}

// epoch returns the pinned epoch for frag, or 0 (live read) for fragments
// outside the pin set — exactly the query temporaries, which no writer
// ever versions.
func (s *epochSnap) epoch(frag string) uint64 { return s.epochs[frag] }

// release unpins the snapshot. Safe to call exactly once.
func (s *epochSnap) release() {
	s.e.mu.Lock()
	for f, ep := range s.epochs {
		if p := s.e.pins[f]; p != nil {
			if p[ep] <= 1 {
				delete(p, ep)
				if len(p) == 0 {
					delete(s.e.pins, f)
				}
			} else {
				p[ep]--
			}
		}
	}
	s.e.mu.Unlock()
}

// mvccOn reports whether snapshot reads and epoch stamping are active:
// parallel dispatch without the LockedReads escape hatch.
func (c *Cluster) mvccOn() bool { return c.mvcc != nil }

// writeEpoch returns the version stamp for mutating frag under the current
// statement's exclusive claim; 0 (record nothing) when MVCC is off.
func (c *Cluster) writeEpoch(frag string) uint64 {
	if c.mvcc == nil {
		return 0
	}
	return c.mvcc.writeEpoch(frag)
}

// gcFloorFor returns the snapshot GC floor piggybacked on mutating
// requests for frag; 0 (no-op) when MVCC is off.
func (c *Cluster) gcFloorFor(frag string) uint64 {
	if c.mvcc == nil {
		return 0
	}
	return c.mvcc.floor(frag)
}

// publishStmt publishes a successful statement on table: the table, its
// auxiliary relations and its views move to their next committed epoch in
// one atomic step. Must run before the statement's claims are released.
func (c *Cluster) publishStmt(table string) {
	if c.mvcc == nil {
		return
	}
	c.mvcc.publish(c.publishSet(table))
}

// publishSet returns table's cached publish set, rebuilt when the catalog
// version moves (DDL holds the global exclusive lock, so readers of the
// cache never race a rebuild-triggering change mid-statement).
func (c *Cluster) publishSet(table string) []string {
	e := c.mvcc
	e.setMu.Lock()
	defer e.setMu.Unlock()
	if v := c.cat.Version(); v != e.setVer {
		e.setVer = v
		for k := range e.pubSets {
			delete(e.pubSets, k)
		}
	}
	if s, ok := e.pubSets[table]; ok {
		return s
	}
	s := []string{table}
	for _, a := range c.cat.AuxRelsFor(table) {
		s = append(s, a.Name)
	}
	for _, v := range c.cat.ViewsOn(table) {
		s = append(s, v.Name)
	}
	e.pubSets[table] = s
	return s
}

// beginSnapshotRead opens an MVCC read over the named relations or views:
// global shared lock only (no table claims), the cutover read fence
// shared, and the committed epochs of every named relation plus its
// auxiliary relations and views pinned (the publish sets — computed under
// the shared lock, so DDL cannot move the catalog mid-expansion). Returns
// ok=false when the snapshot path is unavailable — MVCC off, or the
// cluster degraded (the failover read path recombines primaries and
// promoted followers under its own rules) — and the caller falls back to
// the locked read path.
func (c *Cluster) beginSnapshotRead(names ...string) (*epochSnap, *lockmgr.Held, bool) {
	if c.mvcc == nil || len(names) == 0 || len(c.Degraded()) > 0 {
		return nil, nil, false
	}
	h := c.lm.AcquireRead()
	c.readFence.RLock()
	frags := c.publishSet(names[0])
	if len(names) > 1 {
		frags = append([]string(nil), frags...)
		for _, n := range names[1:] {
			frags = append(frags, c.publishSet(n)...)
		}
	}
	return c.mvcc.snapshot(frags), h, true
}

// endSnapshotRead closes a read opened by beginSnapshotRead.
func (c *Cluster) endSnapshotRead(s *epochSnap, h *lockmgr.Held) {
	s.release()
	c.readFence.RUnlock()
	h.Release()
}
