package cluster

import (
	"errors"
	"fmt"

	"joinview/internal/catalog"
	"joinview/internal/expr"
	"joinview/internal/maintain"
	"joinview/internal/mplan"
	"joinview/internal/netsim"
	"joinview/internal/node"
	"joinview/internal/plan"
	"joinview/internal/storage"
	"joinview/internal/txn"
	"joinview/internal/types"
)

// located ties a base tuple to its storage position, for global-index
// entries and undo.
type located struct {
	node  int
	row   storage.RowID
	tuple types.Tuple
}

// errNoVictims aborts a delete/update statement that matched nothing. The
// statement scope still opened (the victim scan runs inside it, so a
// concurrent writer cannot invalidate located row ids between scan and
// apply), but under presumed abort an empty statement costs nothing: no
// participants, no decision record.
var errNoVictims = errors.New("cluster: statement matched no tuples")

// Insert runs one insert transaction against a base table: route and store
// the tuples, update every auxiliary relation and global index of the
// table, then propagate the delta into every join view on the table using
// the view's maintenance strategy — the compiled insert pipeline for the
// table. On any error all applied work is rolled back.
func (c *Cluster) Insert(table string, tuples []types.Tuple) error {
	if len(tuples) == 0 {
		return nil
	}
	return c.withFailover(func() error { return c.insertOnce(table, tuples) })
}

func (c *Cluster) insertOnce(table string, tuples []types.Tuple) error {
	if c.asyncOn() {
		return c.insertAsync(table, tuples)
	}
	h := c.lockStmt(table)
	defer h.Release()
	if err := c.failIfDegraded(); err != nil {
		return err
	}
	mp, err := c.planFor(table, maintain.OpInsert)
	if err != nil {
		return err
	}
	if err := c.runStmt(func(tx *txn.Txn) error {
		return c.execPlan(tx, mp, tuples, nil)
	}); err != nil {
		return err
	}
	c.publishStmt(table)
	c.bumpRows(table, int64(len(tuples)))
	return nil
}

// Delete removes every tuple of the table matching pred, maintaining all
// auxiliary structures and views, and returns the deleted tuples.
func (c *Cluster) Delete(table string, pred expr.Expr) ([]types.Tuple, error) {
	var out []types.Tuple
	err := c.withFailover(func() error {
		var err error
		out, err = c.deleteOnce(table, pred)
		return err
	})
	return out, err
}

func (c *Cluster) deleteOnce(table string, pred expr.Expr) ([]types.Tuple, error) {
	if c.asyncOn() {
		return c.deleteAsync(table, pred)
	}
	h := c.lockStmt(table)
	defer h.Release()
	deleted, err := c.deleteLocked(table, pred)
	if err != nil {
		return nil, err
	}
	c.bumpRows(table, -int64(len(deleted)))
	return deleted, nil
}

func (c *Cluster) deleteLocked(table string, pred expr.Expr) ([]types.Tuple, error) {
	if err := c.failIfDegraded(); err != nil {
		return nil, err
	}
	mp, err := c.planFor(table, maintain.OpDelete)
	if err != nil {
		return nil, err
	}
	// The victim scan runs inside the statement scope: the located row ids
	// stay valid until the statement's own deletes consume them, because
	// the statement holds its table locks the whole time.
	var victims []types.Tuple
	err = c.runStmt(func(tx *txn.Txn) error {
		var locs []located
		var err error
		victims, locs, err = c.findVictims(table, pred)
		if err != nil {
			return err
		}
		if len(victims) == 0 {
			return errNoVictims
		}
		return c.execPlan(tx, mp, victims, locs)
	})
	if errors.Is(err, errNoVictims) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	// Publish before the caller releases the statement's claims: the
	// epoch bump makes this statement's version records part of the
	// committed state for future snapshots.
	c.publishStmt(table)
	return victims, nil
}

// findVictims locates the tuples matching pred at every node (a scan; the
// paper's model does not charge victim location, but a real system reads
// the relation).
func (c *Cluster) findVictims(table string, pred expr.Expr) ([]types.Tuple, []located, error) {
	resps, err := c.tr.Broadcast(netsim.Coordinator, node.FindMatching{Frag: table, Pred: pred})
	if err != nil {
		return nil, nil, err
	}
	var locs []located
	var victims []types.Tuple
	for n, r := range resps {
		rr := r.(node.RowsResult)
		for i := range rr.Rows {
			locs = append(locs, located{node: n, row: rr.Rows[i], tuple: rr.Tuples[i]})
			victims = append(victims, rr.Tuples[i])
		}
	}
	return victims, locs, nil
}

// Update modifies every tuple matching pred by applying the set map
// (column -> new value), implemented as the paper treats updates: the
// compiled delete pipeline for the old tuples followed by the compiled
// insert pipeline for the new ones, all inside one transaction scope. It
// returns the number of tuples updated.
func (c *Cluster) Update(table string, set map[string]types.Value, pred expr.Expr) (int, error) {
	var n int
	err := c.withFailover(func() error {
		var err error
		n, err = c.updateOnce(table, set, pred)
		return err
	})
	return n, err
}

func (c *Cluster) updateOnce(table string, set map[string]types.Value, pred expr.Expr) (int, error) {
	if c.asyncOn() {
		return c.updateAsync(table, set, pred)
	}
	h := c.lockStmt(table)
	defer h.Release()
	t, err := c.cat.Table(table)
	if err != nil {
		return 0, err
	}
	for col := range set {
		if t.Schema.ColIndex(col) < 0 {
			return 0, fmt.Errorf("cluster: update %q: unknown column %q", table, col)
		}
	}
	if err := c.failIfDegraded(); err != nil {
		return 0, err
	}
	mpDel, err := c.planFor(table, maintain.OpDelete)
	if err != nil {
		return 0, err
	}
	mpIns, err := c.planFor(table, maintain.OpInsert)
	if err != nil {
		return 0, err
	}
	// The victim scan, the delete half and the insert half all run inside
	// one statement scope: a failure anywhere leaves neither half applied,
	// and the located row ids cannot be invalidated between scan and apply
	// because the statement holds its table locks throughout.
	count := 0
	err = c.runStmt(func(tx *txn.Txn) error {
		victims, locs, err := c.findVictims(table, pred)
		if err != nil {
			return err
		}
		if len(victims) == 0 {
			return errNoVictims
		}
		count = len(victims)
		replacement := make([]types.Tuple, len(victims))
		for i, v := range victims {
			nt := v.Clone()
			for col, val := range set {
				nt[t.Schema.MustColIndex(col)] = val
			}
			replacement[i] = nt
		}
		if err := c.execPlan(tx, mpDel, victims, locs); err != nil {
			return err
		}
		return c.execPlan(tx, mpIns, replacement, nil)
	})
	if errors.Is(err, errNoVictims) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	c.publishStmt(table)
	return count, nil
}

// chooseForView compiles the advisory stage for one view (uncached — the
// write path goes through the plan cache instead) and picks the option for
// a delta of deltaSize tuples.
func (c *Cluster) chooseForView(v *catalog.View, table string, deltaSize int) (*mplan.StrategyOption, error) {
	vs, err := mplan.CompileView(c.cat, c.st, v, table)
	if err != nil {
		return nil, err
	}
	return vs.Choose(c.NumNodes(), deltaSize,
		len(c.cat.AuxRelsFor(table)), len(c.cat.GlobalIndexesFor(table))), nil
}

// ResolveStrategy returns the maintenance method for one update of
// deltaSize tuples: the view's fixed strategy, or — for StrategyAuto — the
// cheapest by the multiway analytical model, considering only strategies
// whose auxiliary structures exist (the hybrid chooser from the paper's
// conclusion). The same chooser runs inside every compiled view stage.
func (c *Cluster) ResolveStrategy(v *catalog.View, table string, deltaSize int) (catalog.Strategy, error) {
	if s := v.StrategyFor(table); s != catalog.StrategyAuto {
		return s, nil
	}
	opt, err := c.chooseForView(v, table, deltaSize)
	if err != nil {
		return 0, err
	}
	return opt.Strategy, nil
}

// ExplainMaintenance renders the maintenance plan a view would execute for
// an update of the named table — EXPLAIN for the maintenance path.
func (c *Cluster) ExplainMaintenance(viewName, table string, deltaSize int) (string, error) {
	v, err := c.cat.View(viewName)
	if err != nil {
		return "", err
	}
	opt, err := c.chooseForView(v, table, deltaSize)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("strategy: %s\n%s", opt.Strategy, opt.Plan.Describe()), nil
}

// ComputeViewDeltaOnly runs just the "compute the changes to the view"
// step for a hypothetical delta, without touching the base relation, the
// auxiliary structures or the view — the exact measurement of the paper's
// §3.3 experiment, which timed the delta_customer ⋈ orders [⋈ lineitem]
// SELECT in isolation. It returns the number of join tuples the delta
// would produce and the I/O/message cost of computing them.
func (c *Cluster) ComputeViewDeltaOnly(viewName, table string, tuples []types.Tuple, strat catalog.Strategy) (int, Metrics, error) {
	// Global: the measurement window reads the whole cluster's meters, so
	// concurrent statements would pollute it.
	h := c.lockGlobal()
	defer h.Release()
	v, err := c.cat.View(viewName)
	if err != nil {
		return 0, Metrics{}, err
	}
	p, err := plan.Build(c.cat, c.st, v, table, strat)
	if err != nil {
		return 0, Metrics{}, err
	}
	before := c.Metrics()
	delta, _, err := maintain.ComputeViewDelta(c.env, p, tuples, c.cfg.Algo)
	if err != nil {
		return 0, Metrics{}, err
	}
	return len(delta), c.Metrics().Sub(before), nil
}

// bumpRows keeps the row-count statistic roughly current between explicit
// RefreshStats calls.
func (c *Cluster) bumpRows(table string, delta int64) {
	ts, ok := c.st.Get(table)
	if !ok {
		return
	}
	ts.Rows += delta
	if ts.Rows < 0 {
		ts.Rows = 0
	}
	c.st.Set(table, ts)
}
