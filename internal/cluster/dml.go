package cluster

import (
	"errors"
	"fmt"

	"joinview/internal/catalog"
	"joinview/internal/cost"
	"joinview/internal/expr"
	"joinview/internal/maintain"
	"joinview/internal/netsim"
	"joinview/internal/node"
	"joinview/internal/plan"
	"joinview/internal/storage"
	"joinview/internal/txn"
	"joinview/internal/types"
)

// located ties a base tuple to its storage position, for global-index
// entries and undo.
type located struct {
	node  int
	row   storage.RowID
	tuple types.Tuple
}

// errNoVictims aborts a delete/update statement that matched nothing. The
// statement scope still opened (the victim scan runs inside it, so a
// concurrent writer cannot invalidate located row ids between scan and
// apply), but under presumed abort an empty statement costs nothing: no
// participants, no decision record.
var errNoVictims = errors.New("cluster: statement matched no tuples")

// Insert runs one insert transaction against a base table: route and store
// the tuples, update every auxiliary relation and global index of the
// table, then propagate the delta into every join view on the table using
// the view's maintenance strategy. On any error all applied work is rolled
// back.
func (c *Cluster) Insert(table string, tuples []types.Tuple) error {
	if len(tuples) == 0 {
		return nil
	}
	h := c.lockStmt(table)
	defer h.Release()
	if err := c.failIfDegraded(); err != nil {
		return err
	}

	t, err := c.cat.Table(table)
	if err != nil {
		return err
	}
	if err := c.runStmt(func(tx *txn.Txn) error {
		return c.insertLocked(tx, t, tuples)
	}); err != nil {
		return err
	}
	c.bumpRows(table, int64(len(tuples)))
	return nil
}

func (c *Cluster) insertLocked(tx *txn.Txn, t *catalog.Table, tuples []types.Tuple) error {
	// 1. Base relation: route each tuple to its home node.
	locs, err := c.insertBase(tx, t, tuples)
	if err != nil {
		return err
	}
	// 2. Auxiliary relations of the updated table ("update auxiliary
	// relation AR_A; (cheap)").
	if err := c.updateAuxRels(tx, t, tuples, maintain.OpInsert, nil); err != nil {
		return err
	}
	// 3. Global indexes of the updated table ("update global index GI_A;
	// (cheap)").
	if err := c.updateGlobalIndexes(tx, t, locs, maintain.OpInsert); err != nil {
		return err
	}
	// 4. Join views ("update join view JV").
	return c.propagateToViews(tx, t, tuples, maintain.OpInsert)
}

// insertBase routes tuples by the partition attribute and stores them,
// returning each tuple's storage location.
func (c *Cluster) insertBase(tx *txn.Txn, t *catalog.Table, tuples []types.Tuple) ([]located, error) {
	pi := t.Schema.MustColIndex(t.PartitionCol)
	// Two counting passes carve the per-node buckets (tuples and original
	// indexes) out of two exactly-sized backing arrays — no append growth
	// on the hot path.
	homes := make([]int, len(tuples))
	counts := make([]int, c.cfg.Nodes)
	for i, tup := range tuples {
		if err := t.Schema.Validate(tup); err != nil {
			return nil, fmt.Errorf("cluster: insert into %q: %w", t.Name, err)
		}
		n := c.part.NodeFor(tup[pi])
		homes[i] = n
		counts[n]++
	}
	tupleBacking := make([]types.Tuple, len(tuples))
	idxBacking := make([]int, len(tuples))
	bucketTuples := make([][]types.Tuple, c.cfg.Nodes)
	bucketIdx := make([][]int, c.cfg.Nodes)
	off := 0
	for n := 0; n < c.cfg.Nodes; n++ {
		bucketTuples[n] = tupleBacking[off:off : off+counts[n]]
		bucketIdx[n] = idxBacking[off:off : off+counts[n]]
		off += counts[n]
	}
	for i, tup := range tuples {
		n := homes[i]
		bucketTuples[n] = append(bucketTuples[n], tup)
		bucketIdx[n] = append(bucketIdx[n], i)
	}
	var calls []netsim.Call
	var dests []int
	for n, bucket := range bucketTuples {
		if len(bucket) == 0 {
			continue
		}
		calls = append(calls, netsim.Call{From: netsim.Coordinator, To: n, Req: node.Insert{Frag: t.Name, Tuples: bucket}})
		dests = append(dests, n)
	}
	resps, scErr := c.scatter(calls)
	// Register a compensation for every call that succeeded before
	// reporting any failure: under parallel dispatch, calls after the
	// failed index still ran and their work must roll back too.
	locs := make([]located, len(tuples))
	for ci, resp := range resps {
		if resp == nil {
			continue
		}
		n := dests[ci]
		rows := resp.(node.InsertResult).Rows
		rowsCopy := append([]storage.RowID(nil), rows...)
		tx.OnRollback(func() error {
			return c.undoCall(n, node.DeleteRows{Frag: t.Name, Rows: rowsCopy})
		})
		for bi, row := range rows {
			locs[bucketIdx[n][bi]] = located{node: n, row: row, tuple: bucketTuples[n][bi]}
		}
	}
	if scErr != nil {
		return nil, scErr
	}
	return locs, nil
}

// updateAuxRels propagates a base delta into every auxiliary relation of
// the table. For deletes, victims are matched by value (bag semantics).
func (c *Cluster) updateAuxRels(tx *txn.Txn, t *catalog.Table, tuples []types.Tuple, op maintain.Op, _ []located) error {
	for _, ar := range c.cat.AuxRelsFor(t.Name) {
		projected, err := projectForAuxRel(t, ar, tuples)
		if err != nil {
			return err
		}
		buckets, err := c.part.Spread(ar.Schema, ar.PartitionCol, projected)
		if err != nil {
			return err
		}
		arName := ar.Name
		partCol := ar.PartitionCol
		var calls []netsim.Call
		var dests []int
		for n, bucket := range buckets {
			if len(bucket) == 0 {
				continue
			}
			var req any
			if op == maintain.OpInsert {
				req = node.Insert{Frag: arName, Tuples: bucket}
			} else {
				req = node.DeleteMatch{Frag: arName, HintCol: partCol, Tuples: bucket}
			}
			calls = append(calls, netsim.Call{From: netsim.Coordinator, To: n, Req: req})
			dests = append(dests, n)
		}
		resps, scErr := c.scatter(calls)
		for ci, resp := range resps {
			if resp == nil {
				continue
			}
			n := dests[ci]
			if op == maintain.OpInsert {
				rows := append([]storage.RowID(nil), resp.(node.InsertResult).Rows...)
				tx.OnRollback(func() error {
					return c.undoCall(n, node.DeleteRows{Frag: arName, Rows: rows})
				})
			} else {
				dr := resp.(node.DeleteResult)
				tx.OnRollback(func() error {
					return c.undoCall(n, node.RestoreRows{Frag: arName, Rows: dr.Rows, Tuples: dr.Tuples})
				})
			}
		}
		if scErr != nil {
			return scErr
		}
	}
	return nil
}

// updateGlobalIndexes maintains every global index of the updated table.
// The statement's entries are grouped by index home node into one batched
// envelope per destination per index — replacing the per-(tuple, index)
// message storm — while each envelope's Sources field keeps the logical
// accounting of the calls it replaces: every entry counts one SEND from
// the base tuple's home node to the index home (free when they coincide),
// and the node meters charge per entry, so the paper's cost figures are
// unchanged by batching.
func (c *Cluster) updateGlobalIndexes(tx *txn.Txn, t *catalog.Table, locs []located, op maintain.Op) error {
	type giBatch struct {
		vals []types.Value
		gs   []storage.GlobalRowID
		srcs []int32
	}
	for _, gi := range c.cat.GlobalIndexesFor(t.Name) {
		ci := t.Schema.MustColIndex(gi.Col)
		giName := gi.Name
		batches := make([]giBatch, c.cfg.Nodes)
		for _, loc := range locs {
			val := loc.tuple[ci]
			home := c.part.NodeFor(val)
			b := &batches[home]
			b.vals = append(b.vals, val)
			b.gs = append(b.gs, storage.GlobalRowID{Node: int32(loc.node), Row: loc.row})
			b.srcs = append(b.srcs, int32(loc.node))
		}
		var calls []netsim.Call
		var dests []int
		for home := range batches {
			b := &batches[home]
			if len(b.vals) == 0 {
				continue
			}
			var req any
			if op == maintain.OpInsert {
				req = node.GIInsertBatch{GI: giName, Vals: b.vals, Gs: b.gs, Metered: true, Sources: b.srcs}
			} else {
				req = node.GIDeleteBatch{GI: giName, Vals: b.vals, Gs: b.gs, Sources: b.srcs}
			}
			calls = append(calls, netsim.Call{From: netsim.Coordinator, To: home, Req: req})
			dests = append(dests, home)
		}
		resps, scErr := c.scatter(calls)
		var outOfSync error
		for ci2, resp := range resps {
			if resp == nil {
				continue
			}
			home := dests[ci2]
			b := batches[home]
			if op == maintain.OpInsert {
				// Compensations originate at the coordinator, like every
				// undoCall: each undone entry is one coordinator SEND.
				srcs := coordinatorSources(len(b.vals))
				tx.OnRollback(func() error {
					return c.undoCall(home, node.GIDeleteBatch{GI: giName, Vals: b.vals, Gs: b.gs, Sources: srcs})
				})
			} else {
				ok := resp.(node.GIDeletedBatch).OK
				restored := giBatch{}
				for i, existed := range ok {
					if !existed {
						if outOfSync == nil {
							outOfSync = fmt.Errorf("cluster: global index %q missing entry for %v (out of sync)", giName, b.vals[i])
						}
						continue
					}
					restored.vals = append(restored.vals, b.vals[i])
					restored.gs = append(restored.gs, b.gs[i])
				}
				if len(restored.vals) == 0 {
					continue
				}
				srcs := coordinatorSources(len(restored.vals))
				tx.OnRollback(func() error {
					return c.undoCall(home, node.GIInsertBatch{GI: giName, Vals: restored.vals, Gs: restored.gs, Metered: true, Sources: srcs})
				})
			}
		}
		if scErr != nil {
			return scErr
		}
		if outOfSync != nil {
			return outOfSync
		}
	}
	return nil
}

// coordinatorSources builds a Sources slice attributing every entry of a
// compensation batch to the coordinator, matching the per-entry undoCall
// accounting the batch replaces.
func coordinatorSources(n int) []int32 {
	srcs := make([]int32, n)
	for i := range srcs {
		srcs[i] = int32(netsim.Coordinator)
	}
	return srcs
}

// propagateToViews computes and applies the view delta for every join view
// on the updated table.
func (c *Cluster) propagateToViews(tx *txn.Txn, t *catalog.Table, tuples []types.Tuple, op maintain.Op) error {
	for _, v := range c.cat.ViewsOn(t.Name) {
		strat, err := c.ResolveStrategy(v, t.Name, len(tuples))
		if err != nil {
			return err
		}
		p, err := plan.Build(c.cat, c.st, v, t.Name, strat)
		if err != nil {
			return err
		}
		delta, _, err := maintain.ComputeViewDelta(c.env, p, tuples, c.cfg.Algo)
		if err != nil {
			return err
		}
		if err := maintain.ApplyToView(c.env, v, delta, op); err != nil {
			return err
		}
		v, delta := v, delta
		undoOp := maintain.OpDelete
		if op == maintain.OpDelete {
			undoOp = maintain.OpInsert
		}
		tx.OnRollback(func() error {
			// Node-down failures are absorbed: a crashed node's view
			// fragments are rebuilt from base relations during Recover,
			// which subsumes the unapplied part of this undo.
			return absorbNodeDown(maintain.ApplyToView(c.env, v, delta, undoOp))
		})
	}
	return nil
}

// Delete removes every tuple of the table matching pred, maintaining all
// auxiliary structures and views, and returns the deleted tuples.
func (c *Cluster) Delete(table string, pred expr.Expr) ([]types.Tuple, error) {
	h := c.lockStmt(table)
	defer h.Release()
	deleted, err := c.deleteLocked(table, pred)
	if err != nil {
		return nil, err
	}
	c.bumpRows(table, -int64(len(deleted)))
	return deleted, nil
}

func (c *Cluster) deleteLocked(table string, pred expr.Expr) ([]types.Tuple, error) {
	if err := c.failIfDegraded(); err != nil {
		return nil, err
	}
	t, err := c.cat.Table(table)
	if err != nil {
		return nil, err
	}
	// The victim scan runs inside the statement scope: the located row ids
	// stay valid until the statement's own deletes consume them, because
	// the statement holds its table locks the whole time.
	var victims []types.Tuple
	err = c.runStmt(func(tx *txn.Txn) error {
		var locs []located
		var err error
		victims, locs, err = c.findVictims(table, pred)
		if err != nil {
			return err
		}
		if len(victims) == 0 {
			return errNoVictims
		}
		return c.applyDelete(tx, t, victims, locs)
	})
	if errors.Is(err, errNoVictims) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return victims, nil
}

// findVictims locates the tuples matching pred at every node (a scan; the
// paper's model does not charge victim location, but a real system reads
// the relation).
func (c *Cluster) findVictims(table string, pred expr.Expr) ([]types.Tuple, []located, error) {
	resps, err := c.tr.Broadcast(netsim.Coordinator, node.FindMatching{Frag: table, Pred: pred})
	if err != nil {
		return nil, nil, err
	}
	var locs []located
	var victims []types.Tuple
	for n, r := range resps {
		rr := r.(node.RowsResult)
		for i := range rr.Rows {
			locs = append(locs, located{node: n, row: rr.Rows[i], tuple: rr.Tuples[i]})
			victims = append(victims, rr.Tuples[i])
		}
	}
	return victims, locs, nil
}

// applyDelete removes the located victims from the base relation and
// propagates the delta through every auxiliary structure and view,
// registering compensations on tx.
func (c *Cluster) applyDelete(tx *txn.Txn, t *catalog.Table, victims []types.Tuple, locs []located) error {
	// 1. Delete from the base relation: one scatter call per node holding
	// victims, in node order (findVictims emits locs node-by-node, so the
	// grouping below is already sorted and the dispatch is deterministic).
	byNode := make([][]storage.RowID, c.cfg.Nodes)
	for _, loc := range locs {
		byNode[loc.node] = append(byNode[loc.node], loc.row)
	}
	var calls []netsim.Call
	var dests []int
	for n, rows := range byNode {
		if len(rows) == 0 {
			continue
		}
		calls = append(calls, netsim.Call{From: netsim.Coordinator, To: n, Req: node.DeleteRows{Frag: t.Name, Rows: rows}})
		dests = append(dests, n)
	}
	resps, scErr := c.scatter(calls)
	for ci, resp := range resps {
		if resp == nil {
			continue
		}
		dr := resp.(node.DeleteResult)
		n := dests[ci]
		// Restore at the original row ids: global-index entries reference
		// (node, row) pairs, so a plain re-insert (which allocates fresh
		// ids) would leave every GI entry for these tuples dangling.
		tx.OnRollback(func() error {
			return c.undoCall(n, node.RestoreRows{Frag: t.Name, Rows: dr.Rows, Tuples: dr.Tuples})
		})
	}
	if scErr != nil {
		return scErr
	}
	// 2. Auxiliary relations.
	if err := c.updateAuxRels(tx, t, victims, maintain.OpDelete, locs); err != nil {
		return err
	}
	// 3. Global indexes.
	if err := c.updateGlobalIndexes(tx, t, locs, maintain.OpDelete); err != nil {
		return err
	}
	// 4. Views.
	return c.propagateToViews(tx, t, victims, maintain.OpDelete)
}

// Update modifies every tuple matching pred by applying the set map
// (column -> new value), implemented as the paper treats updates: a delete
// of the old tuples followed by an insert of the new ones, all inside one
// transaction scope. It returns the number of tuples updated.
func (c *Cluster) Update(table string, set map[string]types.Value, pred expr.Expr) (int, error) {
	h := c.lockStmt(table)
	defer h.Release()
	t, err := c.cat.Table(table)
	if err != nil {
		return 0, err
	}
	for col := range set {
		if t.Schema.ColIndex(col) < 0 {
			return 0, fmt.Errorf("cluster: update %q: unknown column %q", table, col)
		}
	}
	if err := c.failIfDegraded(); err != nil {
		return 0, err
	}
	// The victim scan, the delete half and the insert half all run inside
	// one statement scope: a failure anywhere leaves neither half applied,
	// and the located row ids cannot be invalidated between scan and apply
	// because the statement holds its table locks throughout.
	count := 0
	err = c.runStmt(func(tx *txn.Txn) error {
		victims, locs, err := c.findVictims(table, pred)
		if err != nil {
			return err
		}
		if len(victims) == 0 {
			return errNoVictims
		}
		count = len(victims)
		replacement := make([]types.Tuple, len(victims))
		for i, v := range victims {
			nt := v.Clone()
			for col, val := range set {
				nt[t.Schema.MustColIndex(col)] = val
			}
			replacement[i] = nt
		}
		if err := c.applyDelete(tx, t, victims, locs); err != nil {
			return err
		}
		return c.insertLocked(tx, t, replacement)
	})
	if errors.Is(err, errNoVictims) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return count, nil
}

// ResolveStrategy returns the maintenance method for one update of
// deltaSize tuples: the view's fixed strategy, or — for StrategyAuto — the
// cheapest by the multiway analytical model, considering only strategies
// whose auxiliary structures exist (the hybrid chooser from the paper's
// conclusion).
func (c *Cluster) ResolveStrategy(v *catalog.View, table string, deltaSize int) (catalog.Strategy, error) {
	if s := v.StrategyFor(table); s != catalog.StrategyAuto {
		return s, nil
	}
	type option struct {
		strat catalog.Strategy
		cost  float64
	}
	var opts []option
	for _, strat := range []catalog.Strategy{catalog.StrategyAuxRel, catalog.StrategyGlobalIndex, catalog.StrategyNaive} {
		p, err := plan.Build(c.cat, c.st, v, table, strat)
		if err != nil {
			continue // structures missing: strategy unavailable
		}
		steps := make([]cost.ChainStep, len(p.Steps))
		for i, s := range p.Steps {
			steps[i] = cost.ChainStep{Fanout: s.Fanout, Clustered: s.FragClusteredOnCol}
		}
		// Minimize total workload (the paper's TW): the operational
		// warehouse goal is throughput across the update stream, and TW
		// exposes the naive method's all-node work that response time
		// alone would hide.
		var est float64
		switch strat {
		case catalog.StrategyNaive:
			est = cost.TotalNaive(c.cfg.Nodes, deltaSize, steps)
		case catalog.StrategyAuxRel:
			est = cost.TotalAuxRel(c.cfg.Nodes, deltaSize, steps, len(c.cat.AuxRelsFor(table)))
		case catalog.StrategyGlobalIndex:
			est = cost.TotalGlobalIndex(c.cfg.Nodes, deltaSize, steps, len(c.cat.GlobalIndexesFor(table)))
		}
		opts = append(opts, option{strat: strat, cost: est})
	}
	if len(opts) == 0 {
		return 0, fmt.Errorf("cluster: view %q has no feasible maintenance strategy for table %q", v.Name, table)
	}
	best := opts[0]
	for _, o := range opts[1:] {
		if o.cost < best.cost {
			best = o
		}
	}
	return best.strat, nil
}

// ExplainMaintenance renders the maintenance plan a view would execute for
// an update of the named table — EXPLAIN for the maintenance path.
func (c *Cluster) ExplainMaintenance(viewName, table string, deltaSize int) (string, error) {
	v, err := c.cat.View(viewName)
	if err != nil {
		return "", err
	}
	strat, err := c.ResolveStrategy(v, table, deltaSize)
	if err != nil {
		return "", err
	}
	p, err := plan.Build(c.cat, c.st, v, table, strat)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("strategy: %s\n%s", strat, p.Describe()), nil
}

// ComputeViewDeltaOnly runs just the "compute the changes to the view"
// step for a hypothetical delta, without touching the base relation, the
// auxiliary structures or the view — the exact measurement of the paper's
// §3.3 experiment, which timed the delta_customer ⋈ orders [⋈ lineitem]
// SELECT in isolation. It returns the number of join tuples the delta
// would produce and the I/O/message cost of computing them.
func (c *Cluster) ComputeViewDeltaOnly(viewName, table string, tuples []types.Tuple, strat catalog.Strategy) (int, Metrics, error) {
	// Global: the measurement window reads the whole cluster's meters, so
	// concurrent statements would pollute it.
	h := c.lockGlobal()
	defer h.Release()
	v, err := c.cat.View(viewName)
	if err != nil {
		return 0, Metrics{}, err
	}
	p, err := plan.Build(c.cat, c.st, v, table, strat)
	if err != nil {
		return 0, Metrics{}, err
	}
	before := c.Metrics()
	delta, _, err := maintain.ComputeViewDelta(c.env, p, tuples, c.cfg.Algo)
	if err != nil {
		return 0, Metrics{}, err
	}
	return len(delta), c.Metrics().Sub(before), nil
}

// bumpRows keeps the row-count statistic roughly current between explicit
// RefreshStats calls.
func (c *Cluster) bumpRows(table string, delta int64) {
	ts, ok := c.st.Get(table)
	if !ok {
		return
	}
	ts.Rows += delta
	if ts.Rows < 0 {
		ts.Rows = 0
	}
	c.st.Set(table, ts)
}
