package cluster

import (
	"errors"
	"testing"

	"joinview/internal/fault"
	"joinview/internal/netsim"
	"joinview/internal/node"
)

// newBreakerCluster builds a small cluster with the per-node circuit
// breaker armed: threshold consecutive exhausted deliveries to one node
// open its breaker.
func newBreakerCluster(t *testing.T, inj *fault.Injector, threshold int) *Cluster {
	t.Helper()
	c, err := New(Config{Nodes: 2, Faults: inj, RetryAttempts: 2, BreakerThreshold: threshold})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// exhaust burns one full retry budget against the node with injected
// transient handler errors, so the delivery fails and the breaker counts
// one consecutive failure.
func exhaust(t *testing.T, c *Cluster, inj *fault.Injector, n int) {
	t.Helper()
	inj.FailNext(fault.KindHandlerErr, c.cfg.RetryAttempts)
	if _, err := c.tr.Call(netsim.Coordinator, n, node.Ping{}); err == nil {
		t.Fatal("delivery should have exhausted its retry budget")
	}
}

// TestBreakerOpensAfterConsecutiveTimeouts drives a node through
// BreakerThreshold consecutive exhausted deliveries and asserts the
// breaker opens: later calls fail fast with ErrSuspect without touching
// the wire, and recovery closes the breaker again.
func TestBreakerOpensAfterConsecutiveTimeouts(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 11})
	c := newBreakerCluster(t, inj, 3)

	for i := 0; i < 3; i++ {
		if got := c.Suspect(); len(got) != 0 {
			t.Fatalf("breaker open after %d failures: %v", i, got)
		}
		exhaust(t, c, inj, 1)
	}
	if got := c.Suspect(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Suspect() = %v, want [1]", got)
	}

	// Open breaker: fail fast, no delivery attempted.
	faultsBefore := inj.Stats().Total()
	_, err := c.tr.Call(netsim.Coordinator, 1, node.Ping{})
	if !errors.Is(err, ErrSuspect) {
		t.Fatalf("call to suspect node: %v, want ErrSuspect", err)
	}
	if after := inj.Stats().Total(); after != faultsBefore {
		t.Fatalf("fail-fast call still reached the transport: %d faults -> %d", faultsBefore, after)
	}

	// The healthy node is unaffected.
	if _, err := c.tr.Call(netsim.Coordinator, 0, node.Ping{}); err != nil {
		t.Fatalf("call to healthy node: %v", err)
	}

	// Recovery closes the breaker and the node serves again.
	if err := c.Recover(1); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := c.Suspect(); len(got) != 0 {
		t.Fatalf("breaker still open after recovery: %v", got)
	}
	if _, err := c.tr.Call(netsim.Coordinator, 1, node.Ping{}); err != nil {
		t.Fatalf("call after recovery: %v", err)
	}
}

// TestBreakerResetBySuccess asserts the failure count is consecutive, not
// cumulative: a success between exhausted deliveries resets it, so the
// same total number of failures never opens the breaker.
func TestBreakerResetBySuccess(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 11})
	c := newBreakerCluster(t, inj, 3)

	for i := 0; i < 5; i++ {
		exhaust(t, c, inj, 1)
		exhaust(t, c, inj, 1)
		if _, err := c.tr.Call(netsim.Coordinator, 1, node.Ping{}); err != nil {
			t.Fatalf("clean call %d: %v", i, err)
		}
	}
	if got := c.Suspect(); len(got) != 0 {
		t.Fatalf("breaker opened despite interleaved successes: %v", got)
	}
}

// TestBreakerDisabledByDefault asserts a zero threshold disables the
// breaker entirely: any number of exhausted deliveries never trips it.
func TestBreakerDisabledByDefault(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 11})
	c := newBreakerCluster(t, inj, 0)

	for i := 0; i < 6; i++ {
		exhaust(t, c, inj, 1)
	}
	if got := c.Suspect(); len(got) != 0 {
		t.Fatalf("disabled breaker tripped: %v", got)
	}
	if _, err := c.tr.Call(netsim.Coordinator, 1, node.Ping{}); err != nil {
		t.Fatalf("call after storm: %v", err)
	}
}
