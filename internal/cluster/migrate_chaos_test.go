package cluster

import (
	"fmt"
	"sync"
	"testing"

	"joinview/internal/catalog"
	"joinview/internal/expr"
	"joinview/internal/fault"
	"joinview/internal/types"
)

// newMigrationChaosCluster builds a loaded 4-node cluster on the chosen
// transport, wrapped in the (disarmed) injector, with a jv1 view under
// the given strategy.
func newMigrationChaosCluster(t *testing.T, inj *fault.Injector, strat catalog.Strategy, useChan bool) *Cluster {
	t.Helper()
	c, err := New(Config{Nodes: 4, Faults: inj, RetryAttempts: 3, UseChannels: useChan})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for _, tab := range []*catalog.Table{customerTable(), ordersTable(), lineitemTable()} {
		if err := c.CreateTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	var customers, orders []types.Tuple
	ok := int64(0)
	for ck := int64(0); ck < 8; ck++ {
		customers = append(customers, cust(ck, float64(ck)*1.5))
		for o := 0; o < 2; o++ {
			ok++
			orders = append(orders, ord(ok, ck, float64(ok)*10))
		}
	}
	if err := c.Insert("customer", customers); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("orders", orders); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"customer", "orders", "lineitem"} {
		if err := c.RefreshStats(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CreateView(jv1Def("jv1", strat)); err != nil {
		t.Fatal(err)
	}
	return c
}

// healMigration ends a migration fault episode: restart crashed nodes at
// the transport, run coordinator recovery for anything marked degraded,
// then drive every undecided migration in the WAL to a decision.
func healMigration(t *testing.T, c *Cluster, inj *fault.Injector) {
	t.Helper()
	for _, n := range inj.DownNodes() {
		inj.Restart(n)
	}
	for _, n := range c.Degraded() {
		if err := c.Recover(n); err != nil {
			t.Fatalf("recover node %d: %v", n, err)
		}
	}
	if err := c.ResumeMigrations(); err != nil {
		t.Fatalf("ResumeMigrations: %v", err)
	}
}

// TestMigrationChaosMatrix injects a coordinator failure, a source-node
// crash, or a destination-node crash at each migration phase boundary,
// under every maintenance strategy, on both transports. Whatever the
// outcome of the interrupted expansion (clean abort, deferred abort, or
// committed-with-cleanup-pending), healing plus a retried rebalance must
// converge to a consistent 5-node cluster: view == recomputed join and
// every auxiliary structure placed correctly.
func TestMigrationChaosMatrix(t *testing.T) {
	phases := []string{"copy", "catchup", "cutover", "cleanup"}
	victims := []string{"coordinator", "source", "destination"}
	for _, strat := range allStrategies {
		for _, useChan := range []bool{false, true} {
			transport := "direct"
			if useChan {
				transport = "chan"
			}
			for _, phase := range phases {
				for _, victim := range victims {
					strat, useChan, phase, victim := strat, useChan, phase, victim
					name := fmt.Sprintf("%s/%s/%s/%s", strat, transport, phase, victim)
					t.Run(name, func(t *testing.T) {
						runMigrationChaos(t, strat, useChan, phase, victim)
					})
				}
			}
		}
	}
}

func runMigrationChaos(t *testing.T, strat catalog.Strategy, useChan bool, phase, victim string) {
	inj := fault.New(fault.Config{Seed: 97})
	c := newMigrationChaosCluster(t, inj, strat, useChan)
	wantOrders, err := c.TableRows("orders")
	if err != nil {
		t.Fatal(err)
	}

	switch victim {
	case "coordinator":
		inj.FailAtPhase(phase)
	case "source":
		inj.CrashAtPhase(phase, 0) // rebalance steals slots from nodes 0,1,2
	case "destination":
		inj.CrashAtPhase(phase, 4)
	}

	_, addErr := c.AddNode()
	if addErr != nil {
		t.Logf("interrupted expansion: %v", addErr)
	}

	// While the crashed node is still down, reads must degrade to partial
	// results instead of failing outright or blocking.
	if victim != "coordinator" && len(inj.DownNodes()) > 0 {
		if _, rerr := c.TableRows("orders"); rerr == nil {
			t.Fatal("read with a crashed node should report a partial result")
		}
	}

	healMigration(t, c, inj)
	if err := c.RebalanceNode(4); err != nil {
		t.Fatalf("retried rebalance: %v", err)
	}

	if got := c.NumNodes(); got != 5 {
		t.Fatalf("NumNodes = %d, want 5", got)
	}
	top := c.Topology()
	owned := 0
	for _, o := range top.SlotOwner {
		if o == 4 {
			owned++
		}
	}
	if owned == 0 {
		t.Fatal("node 4 owns no slots after retried rebalance")
	}
	if top.InFlight != nil {
		t.Fatalf("migration still registered: %+v", top.InFlight)
	}

	got, err := c.TableRows("orders")
	if err != nil {
		t.Fatal(err)
	}
	assertBagEqual(t, "orders after chaos", got, wantOrders)
	assertElasticConsistent(t, c, "after chaos")

	// The cluster is fully operational: DML routes under the final map.
	if err := c.Insert("orders", []types.Tuple{ord(5000, 3, 7)}); err != nil {
		t.Fatalf("insert after chaos: %v", err)
	}
	assertElasticConsistent(t, c, "after post-chaos DML")
}

// TestMigrationWithConcurrentDML expands the cluster while worker
// sessions keep inserting and deleting on the parallel (channel,
// fault-free) execution path: no statement may fail, the catch-up
// mirror must absorb the concurrent writes, and the final state must be
// consistent with the committed-statement mirror.
func TestMigrationWithConcurrentDML(t *testing.T) {
	for _, strat := range allStrategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			c, err := New(Config{Nodes: 4, UseChannels: true})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(c.Close)
			for _, tab := range []*catalog.Table{customerTable(), ordersTable(), lineitemTable()} {
				if err := c.CreateTable(tab); err != nil {
					t.Fatal(err)
				}
			}
			var customers, orders []types.Tuple
			ok := int64(0)
			for ck := int64(0); ck < 10; ck++ {
				customers = append(customers, cust(ck, float64(ck)))
				for o := 0; o < 2; o++ {
					ok++
					orders = append(orders, ord(ok, ck, float64(ok)))
				}
			}
			if err := c.Insert("customer", customers); err != nil {
				t.Fatal(err)
			}
			if err := c.Insert("orders", orders); err != nil {
				t.Fatal(err)
			}
			for _, name := range []string{"customer", "orders", "lineitem"} {
				if err := c.RefreshStats(name); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.CreateView(jv1Def("jv1", strat)); err != nil {
				t.Fatal(err)
			}

			// Committed-statement mirror of the orders table.
			var mu sync.Mutex
			mirror := map[int64]types.Tuple{}
			for _, o := range orders {
				mirror[o[0].I] = o
			}

			stop := make(chan struct{})
			var wg sync.WaitGroup
			workerErr := make(chan error, 4)
			for w := 0; w < 4; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					next := int64(10000 + w*10000)
					var mine []int64
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						if i%3 == 2 && len(mine) > 0 {
							k := mine[0]
							mine = mine[1:]
							if _, err := c.Delete("orders",
								expr.Cmp{Op: expr.EQ, L: expr.Col{Name: "orderkey"}, R: expr.Const{V: types.Int(k)}}); err != nil {
								workerErr <- fmt.Errorf("worker %d delete %d: %w", w, k, err)
								return
							}
							mu.Lock()
							delete(mirror, k)
							mu.Unlock()
						} else {
							next++
							tup := ord(next, next%10, float64(next))
							if err := c.Insert("orders", []types.Tuple{tup}); err != nil {
								workerErr <- fmt.Errorf("worker %d insert %d: %w", w, next, err)
								return
							}
							mu.Lock()
							mirror[next] = tup
							mu.Unlock()
							mine = append(mine, next)
						}
					}
				}()
			}

			dst, err := c.AddNode()
			close(stop)
			wg.Wait()
			if err != nil {
				t.Fatalf("AddNode under concurrent DML: %v", err)
			}
			select {
			case werr := <-workerErr:
				t.Fatalf("statement failed during migration: %v", werr)
			default:
			}

			stats, okm := c.LastMigration()
			if !okm || !stats.Committed {
				t.Fatalf("migration not committed: %+v", stats)
			}
			t.Logf("migration under load: %+v", stats)

			got, err := c.TableRows("orders")
			if err != nil {
				t.Fatal(err)
			}
			mu.Lock()
			want := make([]types.Tuple, 0, len(mirror))
			for _, tup := range mirror {
				want = append(want, tup)
			}
			mu.Unlock()
			assertBagEqual(t, "orders after concurrent migration", got, want)
			assertElasticConsistent(t, c, "after concurrent migration")
			if n := len(nodeRows(t, c, dst, "orders")); n == 0 {
				t.Fatal("new node holds no orders rows")
			}
		})
	}
}

// TestMigrationDurableKillRestart runs expansions against the durable
// (WAL + 2PC) cluster through a kill-restart storm: nodes fail-stop at
// migration phase boundaries, lose all volatile state, and come back via
// checkpoint + log replay; the retried rebalance must converge with the
// view byte-identical to a recompute.
func TestMigrationDurableKillRestart(t *testing.T) {
	for _, strat := range allStrategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			inj := fault.New(fault.Config{Seed: 53})
			c := newDurableChaosCluster(t, inj, strat, 6, 2, 0)
			wantOrders, err := c.TableRows("orders")
			if err != nil {
				t.Fatal(err)
			}

			// Round 1: source node fail-stops during the snapshot copy.
			inj.CrashAtPhase("copy:orders", 0)
			if _, err := c.AddNode(); err != nil {
				t.Logf("round 1 interrupted: %v", err)
			}
			recoverAllDurable(t, c, inj)
			if err := c.ResumeMigrations(); err != nil {
				t.Fatalf("resume after round 1: %v", err)
			}

			// Round 2: destination fail-stops at the cutover boundary.
			inj.CrashAtPhase("cutover", 4)
			if err := c.RebalanceNode(4); err != nil {
				t.Logf("round 2 interrupted: %v", err)
			}
			recoverAllDurable(t, c, inj)
			if err := c.ResumeMigrations(); err != nil {
				t.Fatalf("resume after round 2: %v", err)
			}

			// Round 3: clean retry must complete.
			if err := c.RebalanceNode(4); err != nil {
				t.Fatalf("final rebalance: %v", err)
			}

			got, err := c.TableRows("orders")
			if err != nil {
				t.Fatal(err)
			}
			assertBagEqual(t, "orders after durable storm", got, wantOrders)
			assertElasticConsistent(t, c, "after durable storm")
			assertNoInDoubt(t, c)

			// DML under 2PC keeps working on the expanded cluster.
			if err := c.Insert("orders", []types.Tuple{ord(7000, 2, 3)}); err != nil {
				t.Fatal(err)
			}
			assertElasticConsistent(t, c, "after post-storm DML")
		})
	}
}
