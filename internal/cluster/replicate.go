package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"joinview/internal/catalog"
	"joinview/internal/fault"
	"joinview/internal/hashpart"
	"joinview/internal/lockmgr"
	"joinview/internal/maintain"
	"joinview/internal/netsim"
	"joinview/internal/node"
	"joinview/internal/storage"
	"joinview/internal/types"
	"joinview/internal/wal"
)

// This file implements K-way synchronous fragment replication
// (Config.ReplicationFactor): follower copies, write mirroring, fast
// failover by slot promotion, and online re-replication.
//
// Data model. Every cataloged fragment F (base table, auxiliary relation,
// view) and global index g gets a same-node shadow F~r / g~r on every
// node. Node f's shadow holds exactly the rows/entries of the hash slots f
// follows (slots s with f ∈ Repl[s]). Main fragments keep holding only
// primary copies, so every healthy read path — broadcasts, gathers,
// probes, global-index lookups — is unchanged and duplicate-free; the
// RF=1 and RF>=2 healthy paths are byte-identical.
//
// Write path. The resilient delivery layer mirrors every applied mutating
// sub-request (mirrorMutation, called next to the migration tap): tuples
// and index entries are bucketed by slot and re-delivered to each
// follower's shadow, inside the same statement scope — under Durability
// the mirrors carry the statement's TID, so followers participate in the
// presumed-abort two-phase commit. A mirror failure never fails the
// statement: a dead follower is already in the degraded set (the next
// statement fails over around it), any other mirror failure evicts the
// follower (staleRepl) until re-replication copies it fresh.
//
// Failover. When a node is down (crash, MarkNodeDown, or an opened
// circuit breaker, which under replication marks the node down), heal()
// promotes each of its slots to the first live in-sync follower:
// PromoteSlots moves the slot's rows from the follower's shadow into its
// main fragments, global indexes re-home (GIPromoteSlots) and swap
// dangling row references to the promoted copies (GIScrubNode +
// reinsert), and a new map without the victim installs. From then on the
// victim is "failed over": DML commits on the survivors and broadcasts
// answer for the dead node with typed empty responses.
//
// Repair. ReplicateRepair brings the cluster back to full strength
// online: down nodes restart and are wiped back to empty cataloged
// fragments, stale followers' shadows are wiped, a deficit plan picks new
// followers for under-replicated slots, and each object is copied
// primary→shadow under that object's exclusive claim while DML on every
// other object proceeds; copied objects are "armed" so concurrent writers
// mirror to the new followers too, and a final map install makes them
// real.

// replOn reports whether K-way replication is configured.
func (c *Cluster) replOn() bool { return c.cfg.ReplicationFactor > 1 }

// failIfReplicated refuses elasticity operations under replication: slot
// migration and the replica chains are not yet integrated (a migrated
// slot's followers would keep the old placement).
func (c *Cluster) failIfReplicated(op string) error {
	if c.replOn() {
		return fmt.Errorf("cluster: %s is not supported with ReplicationFactor > 1", op)
	}
	return nil
}

// replShadowSuffix marks follower shadow fragments. Migration staging
// fragments use "~mig", so skipping every name containing '~' covers both.
const replShadowSuffix = "~r"

// shadowName returns the follower-shadow fragment name of a cataloged
// fragment or global index.
func shadowName(name string) string { return name + replShadowSuffix }

// replSkip reports whether a fragment name is outside replication: shadow
// and staging fragments (mirroring them would recurse) and temporary query
// fragments (partition-local scratch, gone at statement end).
func replSkip(name string) bool {
	return strings.Contains(name, "~") || strings.HasPrefix(name, "__q")
}

// replFragInfo resolves a cataloged fragment to its partition-column index
// and name (the DeleteMatch hint column for shadow deletes). ok is false
// for fragments replication does not track (temps, unknown names).
func (c *Cluster) replFragInfo(frag string) (partIdx int, hintCol string, ok bool) {
	if t, err := c.cat.Table(frag); err == nil {
		return t.Schema.MustColIndex(t.PartitionCol), t.PartitionCol, true
	}
	if ar, err := c.cat.AuxRel(frag); err == nil {
		return ar.Schema.MustColIndex(ar.PartitionCol), ar.PartitionCol, true
	}
	if v, err := c.cat.View(frag); err == nil {
		q := v.PartitionQualified()
		return v.Schema.MustColIndex(q), q, true
	}
	return 0, "", false
}

// replGIKnown reports whether a global index is cataloged (mirrors skip
// unknown index names).
func (c *Cluster) replGIKnown(gi string) bool {
	_, err := c.cat.GlobalIndex(gi)
	return err == nil
}

// mirrorTargets returns the follower nodes that must receive the slot's
// write for the named fragment: the installed replica set minus down and
// evicted followers, plus the in-flight repair round's targets once the
// fragment's copy is armed.
func (c *Cluster) mirrorTargets(m *replMirrorCtx, frag string, slot int) []int {
	var out []int
	for _, f := range m.pm.Followers(slot) {
		if m.skip[f] {
			continue
		}
		out = append(out, f)
	}
	if m.sess != nil && m.sess.isArmed(frag) {
		for _, f := range m.sess.targets[slot] {
			if m.down[f] || containsInt(out, f) {
				continue
			}
			out = append(out, f)
		}
	}
	return out
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// replMirrorCtx snapshots the routing state one mirror fan-out uses.
type replMirrorCtx struct {
	pm   hashpart.Map
	skip map[int]bool // down or evicted: no Repl-based mirrors
	down map[int]bool
	sess *replRepair
}

func (c *Cluster) mirrorCtx() *replMirrorCtx {
	m := &replMirrorCtx{pm: c.part.Map(), skip: map[int]bool{}, down: map[int]bool{}}
	c.dmu.Lock()
	for n := range c.downNodes {
		m.skip[n] = true
		m.down[n] = true
	}
	c.dmu.Unlock()
	c.rmu.Lock()
	for n := range c.staleRepl {
		m.skip[n] = true
	}
	m.sess = c.repairSess
	c.rmu.Unlock()
	return m
}

// mirrorMutation fans one successfully applied mutating request out to the
// follower shadows of the slots it touched. Called from the resilient
// delivery layer next to the migration tap, on the normal path, the
// broadcast path and in-doubt resolution — so shadows see exactly the
// physical history the primaries see, compensations included. Recovery
// and repair traffic (rawCall/rawDeliver) is not mirrored.
func (c *Cluster) mirrorMutation(to int, wreq, resp any) {
	if !c.replOn() {
		return
	}
	if s, ok := wreq.(node.Seq); ok {
		wreq = s.Req
	}
	switch req := wreq.(type) {
	case node.Insert:
		if replSkip(req.Frag) {
			return
		}
		pi, _, ok := c.replFragInfo(req.Frag)
		if !ok {
			return
		}
		c.mirrorTuples(req.Frag, pi, req.Tuples, func(frag string, tuples []types.Tuple) any {
			return node.Insert{Frag: frag, Tuples: tuples, Unmetered: req.Unmetered}
		})
	case node.RestoreRows:
		if replSkip(req.Frag) {
			return
		}
		pi, _, ok := c.replFragInfo(req.Frag)
		if !ok {
			return
		}
		c.mirrorTuples(req.Frag, pi, req.Tuples, func(frag string, tuples []types.Tuple) any {
			return node.Insert{Frag: frag, Tuples: tuples, Unmetered: true}
		})
	case node.DeleteRows:
		if replSkip(req.Frag) {
			return
		}
		pi, hint, ok := c.replFragInfo(req.Frag)
		if !ok {
			return
		}
		dr, ok := resp.(node.DeleteResult)
		if !ok {
			return
		}
		c.mirrorTuples(req.Frag, pi, dr.Tuples, func(frag string, tuples []types.Tuple) any {
			return node.DeleteMatch{Frag: frag, HintCol: hint, Tuples: tuples}
		})
	case node.DeleteMatch:
		if replSkip(req.Frag) {
			return
		}
		pi, hint, ok := c.replFragInfo(req.Frag)
		if !ok {
			return
		}
		dr, ok := resp.(node.DeleteResult)
		if !ok {
			return
		}
		c.mirrorTuples(req.Frag, pi, dr.Tuples, func(frag string, tuples []types.Tuple) any {
			return node.DeleteMatch{Frag: frag, HintCol: hint, Tuples: tuples}
		})
	case node.AggApply:
		if replSkip(req.Frag) {
			return
		}
		pi, _, ok := c.replFragInfo(req.Frag)
		if !ok {
			return
		}
		m := c.mirrorCtx()
		byDst := map[int][]int{}
		for i, key := range req.Keys {
			if pi >= len(key) {
				continue
			}
			slot := m.pm.Slot(key[pi])
			for _, f := range c.mirrorTargets(m, req.Frag, slot) {
				byDst[f] = append(byDst[f], i)
			}
		}
		for _, f := range sortedKeys(byDst) {
			mirror := node.AggApply{
				Frag: shadowName(req.Frag), HintCol: req.HintCol,
				GroupLen: req.GroupLen, CountPos: req.CountPos,
			}
			for _, i := range byDst[f] {
				mirror.Keys = append(mirror.Keys, req.Keys[i])
				mirror.Deltas = append(mirror.Deltas, req.Deltas[i])
			}
			c.deliverMirror(f, mirror, len(mirror.Keys))
		}
	case node.GIInsert:
		if replSkip(req.GI) || !c.replGIKnown(req.GI) {
			return
		}
		c.mirrorGI(req.GI, []types.Value{req.Val}, []storage.GlobalRowID{req.G}, true,
			func(gi string, vals []types.Value, gs []storage.GlobalRowID) any {
				return node.GIInsertBatch{GI: gi, Vals: vals, Gs: gs, Metered: true}
			})
	case node.GIDelete:
		if replSkip(req.GI) || !c.replGIKnown(req.GI) {
			return
		}
		c.mirrorGI(req.GI, []types.Value{req.Val}, []storage.GlobalRowID{req.G}, true,
			func(gi string, vals []types.Value, gs []storage.GlobalRowID) any {
				return node.GIDeleteBatch{GI: gi, Vals: vals, Gs: gs}
			})
	case node.GIInsertBatch:
		if replSkip(req.GI) || !c.replGIKnown(req.GI) {
			return
		}
		c.mirrorGI(req.GI, req.Vals, req.Gs, req.Metered,
			func(gi string, vals []types.Value, gs []storage.GlobalRowID) any {
				return node.GIInsertBatch{GI: gi, Vals: vals, Gs: gs, Metered: req.Metered}
			})
	case node.GIDeleteBatch:
		if replSkip(req.GI) || !c.replGIKnown(req.GI) {
			return
		}
		c.mirrorGI(req.GI, req.Vals, req.Gs, true,
			func(gi string, vals []types.Value, gs []storage.GlobalRowID) any {
				return node.GIDeleteBatch{GI: gi, Vals: vals, Gs: gs}
			})
	case node.CreateFragment:
		if replSkip(req.Name) {
			return
		}
		c.deliverMirror(to, node.CreateFragment{
			Name: shadowName(req.Name), Schema: req.Schema,
			ClusterCol: req.ClusterCol, PageRows: req.PageRows,
		}, 0)
	case node.CreateGlobalIndex:
		if replSkip(req.Name) {
			return
		}
		c.deliverMirror(to, node.CreateGlobalIndex{
			Name: shadowName(req.Name), DistClustered: req.DistClustered,
		}, 0)
	case node.DropFragment:
		if replSkip(req.Name) {
			return
		}
		// The catalog entry is already gone when the drop broadcast runs,
		// so the mirror drops by name unconditionally: at RF >= 2 every
		// cataloged fragment has a shadow on every node.
		c.deliverMirror(to, node.DropFragment{Name: shadowName(req.Name)}, 0)
	case node.DropGlobalIndexFrag:
		if replSkip(req.Name) {
			return
		}
		c.deliverMirror(to, node.DropGlobalIndexFrag{Name: shadowName(req.Name)}, 0)
	}
}

// mirrorTuples buckets tuples by follower of their slot and delivers one
// shadow write per follower.
func (c *Cluster) mirrorTuples(frag string, partIdx int, tuples []types.Tuple, build func(frag string, tuples []types.Tuple) any) {
	if len(tuples) == 0 {
		return
	}
	m := c.mirrorCtx()
	byDst := map[int][]types.Tuple{}
	for _, t := range tuples {
		if partIdx >= len(t) {
			continue
		}
		slot := m.pm.Slot(t[partIdx])
		for _, f := range c.mirrorTargets(m, frag, slot) {
			byDst[f] = append(byDst[f], t)
		}
	}
	for _, f := range sortedKeys(byDst) {
		c.deliverMirror(f, build(shadowName(frag), byDst[f]), len(byDst[f]))
	}
}

// mirrorGI buckets global-index entries by follower of their value's slot
// and delivers one shadow write per follower.
func (c *Cluster) mirrorGI(gi string, vals []types.Value, gs []storage.GlobalRowID, _ bool, build func(gi string, vals []types.Value, gs []storage.GlobalRowID) any) {
	if len(vals) == 0 || len(vals) != len(gs) {
		return
	}
	m := c.mirrorCtx()
	type pair struct {
		vals []types.Value
		gs   []storage.GlobalRowID
	}
	byDst := map[int]*pair{}
	for i, v := range vals {
		slot := m.pm.Slot(v)
		for _, f := range c.mirrorTargets(m, gi, slot) {
			p := byDst[f]
			if p == nil {
				p = &pair{}
				byDst[f] = p
			}
			p.vals = append(p.vals, v)
			p.gs = append(p.gs, gs[i])
		}
	}
	dsts := make([]int, 0, len(byDst))
	for f := range byDst {
		dsts = append(dsts, f)
	}
	sort.Ints(dsts)
	for _, f := range dsts {
		p := byDst[f]
		c.deliverMirror(f, build(shadowName(gi), p.vals, p.gs), len(p.vals))
	}
}

func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// mirrorAsIfApplied mirrors a compensation that could not be delivered to
// its (down) destination. The node itself is recovered by wipe or local
// log replay, but its followers already hold the aborted statement's
// forward writes in their shadows: without the mirrored undo a later
// failover would promote rows of a rolled-back statement. The request is
// treated as if the destination had applied it in full — exactly what the
// destination's recovery converges to.
func (c *Cluster) mirrorAsIfApplied(to int, req any) {
	if !c.replOn() {
		return
	}
	switch r := req.(type) {
	case node.DeleteMatch:
		// Synthesize the response the mirror transform reads: the tuples
		// were written by this statement, so every one of them matches.
		c.mirrorMutation(to, req, node.DeleteResult{Tuples: r.Tuples})
	case node.DeleteRows:
		// Row ids alone cannot locate the shadow copies; callers with the
		// rows' contents use undoCallRows instead.
	default:
		c.mirrorMutation(to, req, nil)
	}
}

// mirrorViewUndoForDown mirrors the portion of a view-delta undo that was
// addressed to down nodes. ApplyToView's scatter applies (and mirrors) the
// undo at every live owner but fails against crashed ones; this re-derives
// those buckets and sends the as-if-applied compensation to the down
// owners' followers, keeping their view shadows at the aborted-statement
// state the failover promotes from.
func (c *Cluster) mirrorViewUndoForDown(v *catalog.View, delta []types.Tuple, op maintain.Op) {
	if !c.replOn() || len(delta) == 0 {
		return
	}
	m := c.part.Map()
	partCol := v.PartitionQualified()
	idx := v.Schema.ColIndex(partCol)
	if idx < 0 {
		return
	}
	if v.IsAggregate() {
		groups, err := maintain.FoldAggDeltas(v, delta, op)
		if err != nil {
			return
		}
		byDst := map[int][]maintain.AggGroup{}
		for _, g := range groups {
			n := m.Owner[m.Slot(g.Key[idx])]
			if c.isDown(n) {
				byDst[n] = append(byDst[n], g)
			}
		}
		for _, n := range sortedKeys(byDst) {
			req := node.AggApply{
				Frag: v.Name, HintCol: partCol,
				GroupLen: len(v.Out), CountPos: v.CountIndex() - len(v.Out),
			}
			for _, g := range byDst[n] {
				req.Keys = append(req.Keys, g.Key)
				req.Deltas = append(req.Deltas, g.Deltas)
			}
			c.mirrorAsIfApplied(n, req)
		}
		return
	}
	byDst := map[int][]types.Tuple{}
	for _, t := range delta {
		n := m.Owner[m.Slot(t[idx])]
		if c.isDown(n) {
			byDst[n] = append(byDst[n], t)
		}
	}
	for _, n := range sortedKeys(byDst) {
		var req any
		if op == maintain.OpInsert {
			req = node.Insert{Frag: v.Name, Tuples: byDst[n]}
		} else {
			req = node.DeleteMatch{Frag: v.Name, HintCol: partCol, Tuples: byDst[n]}
		}
		c.mirrorAsIfApplied(n, req)
	}
}

// deliverMirror sends one shadow write to a follower through the full
// resilient path (sequence envelope, TID stamping, retries), absorbing
// every failure: the statement's outcome never depends on a mirror. A
// dead follower is already noted down (failover covers it); any other
// failure evicts the follower until re-replication.
func (c *Cluster) deliverMirror(dst int, req any, tuples int) {
	if c.isDown(dst) {
		return
	}
	if _, err := c.resilientCall(netsim.Coordinator, dst, req, false); err != nil {
		if _, down := fault.IsNodeDown(err); down || errors.Is(err, ErrDegraded) {
			// noteDown already happened inside deliver; the next statement
			// (or read) fails over around the node.
			return
		}
		c.evictFollower(dst)
		return
	}
	c.rstats.RecordMirror(tuples)
}

// evictFollower marks a follower stale: it stops receiving mirrors and is
// never promoted to, until ReplicateRepair wipes and recopies its shadows.
func (c *Cluster) evictFollower(n int) {
	c.rmu.Lock()
	already := c.staleRepl[n]
	c.staleRepl[n] = true
	c.rmu.Unlock()
	if !already {
		c.rstats.RecordEviction()
	}
}

// unhealedDown lists down nodes whose slots have not been failed over yet
// (sorted).
func (c *Cluster) unhealedDown() []int {
	c.dmu.Lock()
	down := make([]int, 0, len(c.downNodes))
	for n := range c.downNodes {
		down = append(down, n)
	}
	c.dmu.Unlock()
	c.rmu.Lock()
	out := down[:0]
	for _, n := range down {
		if !c.failedOver[n] {
			out = append(out, n)
		}
	}
	c.rmu.Unlock()
	sort.Ints(out)
	return out
}

// replServesComplete reports whether the cluster, though degraded, serves
// complete reads and commits DML: replication is on and every down node's
// slots were promoted to surviving followers.
func (c *Cluster) replServesComplete() bool {
	if !c.replOn() {
		return false
	}
	c.dmu.Lock()
	anyDown := len(c.downNodes) > 0
	c.dmu.Unlock()
	if !anyDown {
		return false
	}
	return len(c.unhealedDown()) == 0
}

// heal promotes the slots of every unhealed down node to surviving
// followers. Cheap when there is nothing to do; otherwise it runs the
// failover under the global exclusive lock. Callers must not hold cluster
// locks.
func (c *Cluster) heal() error {
	if !c.replOn() || len(c.unhealedDown()) == 0 {
		return nil
	}
	h := c.lockGlobal()
	defer h.Release()
	return c.failoverLocked()
}

// shouldFailover reports whether a statement error is the kind a failover
// plus retry can cure: a node found dead or suspect mid-statement.
func (c *Cluster) shouldFailover(err error) bool {
	if !c.replOn() || err == nil {
		return false
	}
	if errors.Is(err, ErrDegraded) || errors.Is(err, ErrSuspect) {
		return true
	}
	_, down := fault.IsNodeDown(err)
	return down
}

// withFailover runs one statement, and on a node-failure error heals
// (promotes the dead node's slots) and retries. Two retries cover a
// second node failing during the first retry.
func (c *Cluster) withFailover(do func() error) error {
	err := do()
	for tries := 0; tries < 2 && c.shouldFailover(err); tries++ {
		if herr := c.heal(); herr != nil {
			return fmt.Errorf("%w (failover also failed: %v)", err, herr)
		}
		err = do()
	}
	return err
}

// failoverLocked promotes every unhealed down node's slots to their first
// live in-sync follower and installs the resulting map. Caller holds the
// global exclusive lock.
func (c *Cluster) failoverLocked() error {
	victims := c.unhealedDown()
	if len(victims) == 0 {
		return nil
	}
	m := c.part.Map()
	if !m.Replicated() {
		return fmt.Errorf("%w: nodes %v unavailable", ErrDegraded, victims)
	}
	vic := map[int]bool{}
	for _, v := range victims {
		vic[v] = true
	}
	c.rmu.Lock()
	stale := map[int]bool{}
	for n := range c.staleRepl {
		stale[n] = true
	}
	c.rmu.Unlock()

	nm := m.Clone()
	promoted := map[int][]int{}  // new owner -> slots it takes over
	victimSlots := map[int]int{} // victim -> slot count (stats)
	for s, o := range nm.Owner {
		if vic[o] {
			next := -1
			for _, f := range m.Repl[s] {
				if !vic[f] && !stale[f] && !c.isDown(f) {
					next = f
					break
				}
			}
			if next < 0 {
				return fmt.Errorf("%w: slot %d lost node %d and has no live in-sync replica", ErrDegraded, s, o)
			}
			nm.Owner[s] = next
			promoted[next] = append(promoted[next], s)
			victimSlots[o]++
		}
		var keep []int
		for _, f := range nm.Repl[s] {
			if !vic[f] && f != nm.Owner[s] {
				keep = append(keep, f)
			}
		}
		nm.Repl[s] = keep
	}
	nm.Epoch++

	// Move the promoted slots' data shadow→main on each new owner, fixing
	// global indexes as the base rows change identity.
	mod := len(m.Owner)
	owners := sortedKeys(promoted)
	for _, tn := range c.cat.Tables() {
		t, err := c.cat.Table(tn)
		if err != nil {
			return err
		}
		pi := t.Schema.MustColIndex(t.PartitionCol)
		type promo struct {
			node   int
			tuples []types.Tuple
			rows   []storage.RowID
		}
		var promos []promo
		for _, f := range owners {
			resp, err := c.rawCall(f, node.PromoteSlots{
				Src: shadowName(tn), Dst: tn, PartIdx: pi, Mod: mod, Slots: promoted[f],
			})
			if err != nil {
				return fmt.Errorf("cluster: promoting %q slots at node %d: %w", tn, f, err)
			}
			pr := resp.(node.PromoteResult)
			promos = append(promos, promo{node: f, tuples: pr.Tuples, rows: pr.Rows})
		}
		for _, ar := range c.cat.AuxRelsFor(tn) {
			api := ar.Schema.MustColIndex(ar.PartitionCol)
			for _, f := range owners {
				if _, err := c.rawCall(f, node.PromoteSlots{
					Src: shadowName(ar.Name), Dst: ar.Name, PartIdx: api, Mod: mod, Slots: promoted[f],
				}); err != nil {
					return fmt.Errorf("cluster: promoting %q slots at node %d: %w", ar.Name, f, err)
				}
			}
		}
		for _, gi := range c.cat.GlobalIndexesFor(tn) {
			// Re-home the victim-owned index slots from follower shadows.
			for _, f := range owners {
				if _, err := c.rawCall(f, node.GIPromoteSlots{
					Src: shadowName(gi.Name), Dst: gi.Name, Mod: mod, Slots: promoted[f],
				}); err != nil {
					return fmt.Errorf("cluster: promoting %q slots at node %d: %w", gi.Name, f, err)
				}
			}
			// Drop every entry still pointing at a victim's rows, then
			// re-register the promoted copies. Index entries only ever
			// reference primary copies, so scrub + reinsert is complete.
			for n := 0; n < c.NumNodes(); n++ {
				if c.isDown(n) {
					continue
				}
				for _, v := range victims {
					if _, err := c.rawCall(n, node.GIScrubNode{GI: gi.Name, Node: v}); err != nil {
						return fmt.Errorf("cluster: scrubbing %q at node %d: %w", gi.Name, n, err)
					}
					if _, err := c.rawCall(n, node.GIScrubNode{GI: shadowName(gi.Name), Node: v}); err != nil {
						return fmt.Errorf("cluster: scrubbing %q at node %d: %w", shadowName(gi.Name), n, err)
					}
				}
			}
			ci := t.Schema.MustColIndex(gi.Col)
			type ent struct {
				vals []types.Value
				gs   []storage.GlobalRowID
			}
			main := map[int]*ent{}
			shadow := map[int]*ent{}
			add := func(set map[int]*ent, n int, v types.Value, g storage.GlobalRowID) {
				e := set[n]
				if e == nil {
					e = &ent{}
					set[n] = e
				}
				e.vals = append(e.vals, v)
				e.gs = append(e.gs, g)
			}
			for _, p := range promos {
				for i, tup := range p.tuples {
					v := tup[ci]
					g := storage.GlobalRowID{Node: int32(p.node), Row: p.rows[i]}
					slot := nm.Slot(v)
					add(main, nm.Owner[slot], v, g)
					for _, fol := range nm.Repl[slot] {
						add(shadow, fol, v, g)
					}
				}
			}
			for _, n := range sortedKeys(main) {
				if _, err := c.rawCall(n, node.GIInsertBatch{GI: gi.Name, Vals: main[n].vals, Gs: main[n].gs}); err != nil {
					return fmt.Errorf("cluster: re-registering %q at node %d: %w", gi.Name, n, err)
				}
			}
			for _, n := range sortedKeys(shadow) {
				if _, err := c.rawCall(n, node.GIInsertBatch{GI: shadowName(gi.Name), Vals: shadow[n].vals, Gs: shadow[n].gs}); err != nil {
					return fmt.Errorf("cluster: re-registering %q at node %d: %w", shadowName(gi.Name), n, err)
				}
			}
		}
	}
	for _, vn := range c.cat.Views() {
		v, err := c.cat.View(vn)
		if err != nil {
			return err
		}
		vpi := v.Schema.MustColIndex(v.PartitionQualified())
		for _, f := range owners {
			if _, err := c.rawCall(f, node.PromoteSlots{
				Src: shadowName(vn), Dst: vn, PartIdx: vpi, Mod: mod, Slots: promoted[f],
			}); err != nil {
				return fmt.Errorf("cluster: promoting %q slots at node %d: %w", vn, f, err)
			}
		}
	}

	if err := c.part.Install(nm); err != nil {
		return err
	}
	c.cat.SetPartitionMap(nm)
	c.rmu.Lock()
	for _, v := range victims {
		c.failedOver[v] = true
	}
	c.rmu.Unlock()
	for _, v := range victims {
		c.rstats.RecordFailover(victimSlots[v])
		if c.cfg.Durability {
			c.coordLog.Append(wal.Record{Kind: wal.KindReplFailover, Req: wal.ReplFailover{
				Node: v, Epoch: nm.Epoch, PromotedSlots: victimSlots[v],
			}})
		}
	}
	if c.cfg.Durability {
		c.coordLog.Force()
	}
	return nil
}

// replRepair is the coordinator-side state of one in-flight
// re-replication round.
type replRepair struct {
	targets map[int][]int // slot -> followers being (re)copied
	phase   string
	total   int // objects to copy
	done    int
	armedMu chan struct{} // 1-token mutex usable from mirror hot path
	armed   map[string]bool
}

func newReplRepair(targets map[int][]int, total int) *replRepair {
	r := &replRepair{targets: targets, phase: "copy", total: total,
		armedMu: make(chan struct{}, 1), armed: map[string]bool{}}
	r.armedMu <- struct{}{}
	return r
}

func (r *replRepair) arm(names ...string) {
	<-r.armedMu
	for _, n := range names {
		r.armed[n] = true
	}
	r.done++
	r.armedMu <- struct{}{}
}

func (r *replRepair) isArmed(name string) bool {
	<-r.armedMu
	ok := r.armed[name]
	r.armedMu <- struct{}{}
	return ok
}

// ReplRepairStatus describes an in-flight ReplicateRepair round.
type ReplRepairStatus struct {
	Phase string
	// ObjectsDone / ObjectsTotal track the per-object copy progress.
	ObjectsDone, ObjectsTotal int
	// Slots counts slot-replicas the round is restoring.
	Slots int
}

// ReplicateRepair restores the cluster to full replication strength:
// every down node is restarted and wiped back to empty cataloged
// fragments, evicted (stale) followers' shadows are wiped, a deficit plan
// assigns new followers to under-replicated slots, and each cataloged
// object's rows are copied primary→shadow under that object's exclusive
// claim — DML on other objects keeps running, and writers to a copied
// object mirror to the new followers from the moment its copy completes.
// The new replica map installs at the end.
func (c *Cluster) ReplicateRepair() error {
	if !c.replOn() {
		return fmt.Errorf("cluster: ReplicateRepair requires ReplicationFactor > 1")
	}
	// Promote away any not-yet-healed failure first, so the copy sources
	// (the primaries) are all live.
	if err := c.heal(); err != nil {
		return err
	}

	// Phase A (exclusive): revive down nodes, wipe dirty shadows, plan the
	// deficit, and install the repair session.
	h, err := c.lockGlobalDrained()
	if err != nil {
		return err
	}
	if err := c.failIfMigrating(); err != nil {
		h.Release()
		return err
	}
	down := c.Degraded()
	revived := map[int]bool{}
	for _, n := range down {
		if err := c.reviveNodeLocked(n); err != nil {
			h.Release()
			return err
		}
		revived[n] = true
	}
	c.rmu.Lock()
	stale := map[int]bool{}
	for n := range c.staleRepl {
		stale[n] = true
	}
	for n := range revived {
		delete(c.failedOver, n)
	}
	c.rmu.Unlock()

	m := c.part.Map()
	nm := m.Clone()
	k := c.cfg.ReplicationFactor
	if nm.Repl == nil {
		nm.Repl = make([][]int, len(nm.Owner))
	}
	dirty := map[int]bool{}
	for n := range revived {
		dirty[n] = true
	}
	for n := range stale {
		dirty[n] = true
	}
	targets := map[int][]int{}
	restored := 0
	for s, o := range nm.Owner {
		have := map[int]bool{o: true}
		var keep []int
		for _, f := range nm.Repl[s] {
			if !have[f] {
				keep = append(keep, f)
				have[f] = true
			}
		}
		for j := 1; len(keep) < k-1 && j < nm.Nodes; j++ {
			cand := (o + j) % nm.Nodes
			if have[cand] {
				continue
			}
			keep = append(keep, cand)
			have[cand] = true
			dirty[cand] = true
		}
		nm.Repl[s] = keep
		for _, f := range keep {
			if dirty[f] {
				targets[s] = append(targets[s], f)
				restored++
			}
		}
	}
	// Wipe the shadows of every dirty node that was not already wiped by
	// the revive, so the copy lands on empty fragments.
	for _, n := range sortedKeys(dirty) {
		if revived[n] {
			continue
		}
		if err := c.wipeShadowsLocked(n); err != nil {
			h.Release()
			return err
		}
	}
	tables := c.cat.Tables()
	views := c.cat.Views()
	sess := newReplRepair(targets, len(tables)+len(views))
	c.rmu.Lock()
	c.repairSess = sess
	c.rmu.Unlock()
	h.Release()

	fail := func(err error) error {
		c.rmu.Lock()
		c.repairSess = nil
		c.rmu.Unlock()
		return err
	}

	// Phase B (online): copy each object's rows to its dirty followers
	// under the object's exclusive claim, arming it before release so
	// subsequent writers mirror to the new followers too.
	for _, tn := range tables {
		if err := c.repairCopyTable(sess, tn); err != nil {
			return fail(err)
		}
	}
	for _, vn := range views {
		if err := c.repairCopyView(sess, vn); err != nil {
			return fail(err)
		}
	}

	// Phase C (exclusive): make the new followers official.
	h2 := c.lockGlobal()
	defer h2.Release()
	if d := c.Degraded(); len(d) > 0 {
		return fail(fmt.Errorf("%w: nodes %v failed during re-replication; run ReplicateRepair again", ErrDegraded, d))
	}
	nm.Epoch = c.part.Map().Epoch + 1
	if err := c.part.Install(nm); err != nil {
		return fail(err)
	}
	c.cat.SetPartitionMap(nm)
	c.rmu.Lock()
	c.repairSess = nil
	for n := range dirty {
		delete(c.staleRepl, n)
	}
	c.rmu.Unlock()
	c.rstats.RecordRepair(restored)
	if c.cfg.Durability {
		c.coordLog.Append(wal.Record{Kind: wal.KindReplRepair, Req: wal.ReplRepair{
			Epoch: nm.Epoch, RepairedSlots: restored,
		}})
		c.coordLog.Force()
		// Re-image revived nodes: their pre-crash checkpoint + log no
		// longer describe the recopied state.
		for _, n := range sortedKeys(revived) {
			if _, err := c.rawDeliver(n, node.CheckpointReq{}); err != nil {
				return fmt.Errorf("cluster: checkpointing revived node %d: %w", n, err)
			}
		}
	}
	return nil
}

// reviveNodeLocked restarts one down node and wipes it back to empty
// cataloged fragments (main and shadow): its slots were promoted away at
// failover, so it owns nothing until re-replication re-adds it as a
// follower. Caller holds the global exclusive lock.
func (c *Cluster) reviveNodeLocked(n int) error {
	if c.cfg.Durability {
		// Restart from the node's own durable state and settle its
		// in-doubt transactions, so the wipe starts from a decided log.
		if _, err := c.recoverDurable(n); err != nil {
			return fmt.Errorf("cluster: reviving node %d: %w", n, err)
		}
	} else {
		if c.cfg.Faults != nil {
			c.cfg.Faults.Restart(n)
		}
		if _, err := c.rawDeliver(n, node.Ping{}); err != nil {
			return fmt.Errorf("cluster: node %d not answering, restart it first: %w", n, err)
		}
		c.takeRepairs(n)
		c.dmu.Lock()
		delete(c.downNodes, n)
		delete(c.needRebuild, n)
		c.dmu.Unlock()
	}
	c.breakerReset(n)
	return c.wipeNodeLocked(n)
}

// wipeNodeLocked drops and recreates every cataloged fragment, index and
// global index (main and shadow) on one node, leaving it empty.
func (c *Cluster) wipeNodeLocked(n int) error {
	drop := func(name string, gi bool) {
		// Tolerant: the node may have crashed before some shadow existed.
		if gi {
			_, _ = c.rawCall(n, node.DropGlobalIndexFrag{Name: name})
		} else {
			_, _ = c.rawCall(n, node.DropFragment{Name: name})
		}
	}
	mk := func(name string, schema *types.Schema, clusterCol string) error {
		_, err := c.rawCall(n, node.CreateFragment{
			Name: name, Schema: schema, ClusterCol: clusterCol, PageRows: c.cfg.PageRows,
		})
		return err
	}
	for _, tn := range c.cat.Tables() {
		t, err := c.cat.Table(tn)
		if err != nil {
			return err
		}
		for _, name := range []string{tn, shadowName(tn)} {
			drop(name, false)
			if err := mk(name, t.Schema, t.ClusterCol); err != nil {
				return err
			}
		}
		for _, ix := range t.Indexes {
			if _, err := c.rawCall(n, node.CreateIndex{Frag: tn, Name: ix.Name, Col: ix.Col}); err != nil {
				return err
			}
		}
		for _, ar := range c.cat.AuxRelsFor(tn) {
			for _, name := range []string{ar.Name, shadowName(ar.Name)} {
				drop(name, false)
				if err := mk(name, ar.Schema, ar.PartitionCol); err != nil {
					return err
				}
			}
		}
		for _, gi := range c.cat.GlobalIndexesFor(tn) {
			for _, name := range []string{gi.Name, shadowName(gi.Name)} {
				drop(name, true)
				if _, err := c.rawCall(n, node.CreateGlobalIndex{Name: name, DistClustered: gi.DistClustered}); err != nil {
					return err
				}
			}
		}
	}
	for _, vn := range c.cat.Views() {
		v, err := c.cat.View(vn)
		if err != nil {
			return err
		}
		for _, name := range []string{vn, shadowName(vn)} {
			drop(name, false)
			if err := mk(name, v.Schema, v.PartitionQualified()); err != nil {
				return err
			}
		}
	}
	return nil
}

// wipeShadowsLocked drops and recreates only the shadow fragments of one
// (live) node: its main fragments hold current primary copies and are
// untouched. Used for evicted-stale followers before recopy.
func (c *Cluster) wipeShadowsLocked(n int) error {
	for _, tn := range c.cat.Tables() {
		t, err := c.cat.Table(tn)
		if err != nil {
			return err
		}
		_, _ = c.rawCall(n, node.DropFragment{Name: shadowName(tn)})
		if _, err := c.rawCall(n, node.CreateFragment{
			Name: shadowName(tn), Schema: t.Schema, ClusterCol: t.ClusterCol, PageRows: c.cfg.PageRows,
		}); err != nil {
			return err
		}
		for _, ar := range c.cat.AuxRelsFor(tn) {
			_, _ = c.rawCall(n, node.DropFragment{Name: shadowName(ar.Name)})
			if _, err := c.rawCall(n, node.CreateFragment{
				Name: shadowName(ar.Name), Schema: ar.Schema, ClusterCol: ar.PartitionCol, PageRows: c.cfg.PageRows,
			}); err != nil {
				return err
			}
		}
		for _, gi := range c.cat.GlobalIndexesFor(tn) {
			_, _ = c.rawCall(n, node.DropGlobalIndexFrag{Name: shadowName(gi.Name)})
			if _, err := c.rawCall(n, node.CreateGlobalIndex{Name: shadowName(gi.Name), DistClustered: gi.DistClustered}); err != nil {
				return err
			}
		}
	}
	for _, vn := range c.cat.Views() {
		v, err := c.cat.View(vn)
		if err != nil {
			return err
		}
		_, _ = c.rawCall(n, node.DropFragment{Name: shadowName(vn)})
		if _, err := c.rawCall(n, node.CreateFragment{
			Name: shadowName(vn), Schema: v.Schema, ClusterCol: v.PartitionQualified(), PageRows: c.cfg.PageRows,
		}); err != nil {
			return err
		}
	}
	return nil
}

// repairSlotSets inverts the session's slot→targets table into per-node
// slot membership sets.
func repairSlotSets(targets map[int][]int) map[int]map[int]bool {
	out := map[int]map[int]bool{}
	for s, fs := range targets {
		for _, f := range fs {
			if out[f] == nil {
				out[f] = map[int]bool{}
			}
			out[f][s] = true
		}
	}
	return out
}

// repairCopyFrag copies the slot shares of one fragment from the
// primaries into the dirty followers' shadows. Caller holds the object's
// exclusive claim.
func (c *Cluster) repairCopyFrag(sess *replRepair, frag string, partIdx int) error {
	slotsOf := repairSlotSets(sess.targets)
	if len(slotsOf) == 0 {
		return nil
	}
	m := c.part.Map()
	byDst := map[int][]types.Tuple{}
	for src := 0; src < c.NumNodes(); src++ {
		resp, err := c.rawDeliver(src, node.AllRows{Frag: frag})
		if err != nil {
			return fmt.Errorf("cluster: repair copy of %q from node %d: %w", frag, src, err)
		}
		for _, t := range resp.(node.RowsResult).Tuples {
			if partIdx >= len(t) {
				continue
			}
			s := m.Slot(t[partIdx])
			for f, set := range slotsOf {
				if set[s] {
					byDst[f] = append(byDst[f], t)
				}
			}
		}
	}
	for _, f := range sortedKeys(byDst) {
		if _, err := c.rawCall(f, node.Insert{Frag: shadowName(frag), Tuples: byDst[f], Unmetered: true}); err != nil {
			return fmt.Errorf("cluster: repair copy into %q at node %d: %w", shadowName(frag), f, err)
		}
	}
	return nil
}

// repairCopyGI copies the slot shares of one global index from the
// primaries into the dirty followers' shadow index fragments.
func (c *Cluster) repairCopyGI(sess *replRepair, gi string) error {
	slotsOf := repairSlotSets(sess.targets)
	if len(slotsOf) == 0 {
		return nil
	}
	m := c.part.Map()
	type ent struct {
		vals []types.Value
		gs   []storage.GlobalRowID
	}
	byDst := map[int]*ent{}
	for src := 0; src < c.NumNodes(); src++ {
		resp, err := c.rawDeliver(src, node.GIScan{GI: gi})
		if err != nil {
			return fmt.Errorf("cluster: repair copy of %q from node %d: %w", gi, src, err)
		}
		gr := resp.(node.GIScanResult)
		for i, v := range gr.Vals {
			s := m.Slot(v)
			for f, set := range slotsOf {
				if set[s] {
					e := byDst[f]
					if e == nil {
						e = &ent{}
						byDst[f] = e
					}
					e.vals = append(e.vals, v)
					e.gs = append(e.gs, gr.Gs[i])
				}
			}
		}
	}
	for _, f := range sortedKeys(byDst) {
		e := byDst[f]
		if _, err := c.rawCall(f, node.GIInsertBatch{GI: shadowName(gi), Vals: e.vals, Gs: e.gs}); err != nil {
			return fmt.Errorf("cluster: repair copy into %q at node %d: %w", shadowName(gi), f, err)
		}
	}
	return nil
}

// repairCopyTable copies one base table plus its auxiliary relations and
// global indexes under an exclusive claim on the table (every writer of
// those structures holds it too).
func (c *Cluster) repairCopyTable(sess *replRepair, tn string) error {
	h := c.lm.AcquireShared()
	h.Lock(lockmgr.X(tn))
	defer h.Release()
	t, err := c.cat.Table(tn)
	if err != nil {
		return err
	}
	if err := c.repairCopyFrag(sess, tn, t.Schema.MustColIndex(t.PartitionCol)); err != nil {
		return err
	}
	armed := []string{tn}
	for _, ar := range c.cat.AuxRelsFor(tn) {
		if err := c.repairCopyFrag(sess, ar.Name, ar.Schema.MustColIndex(ar.PartitionCol)); err != nil {
			return err
		}
		armed = append(armed, ar.Name)
	}
	for _, gi := range c.cat.GlobalIndexesFor(tn) {
		if err := c.repairCopyGI(sess, gi.Name); err != nil {
			return err
		}
		armed = append(armed, gi.Name)
	}
	sess.arm(armed...)
	return nil
}

// repairCopyView copies one view fragment under an exclusive claim on the
// view (every writer of any of its base tables holds it too).
func (c *Cluster) repairCopyView(sess *replRepair, vn string) error {
	h := c.lm.AcquireShared()
	h.Lock(lockmgr.X(vn))
	defer h.Release()
	v, err := c.cat.View(vn)
	if err != nil {
		return err
	}
	if err := c.repairCopyFrag(sess, vn, v.Schema.MustColIndex(v.PartitionQualified())); err != nil {
		return err
	}
	sess.arm(vn)
	return nil
}

// ReplStatus summarizes replication for Topology: whether each node is
// failed over or evicted, and repair progress.
func (c *Cluster) replStatus() (failedOver, stale []int, repair *ReplRepairStatus) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for n := range c.failedOver {
		failedOver = append(failedOver, n)
	}
	for n := range c.staleRepl {
		stale = append(stale, n)
	}
	sort.Ints(failedOver)
	sort.Ints(stale)
	if s := c.repairSess; s != nil {
		slots := 0
		for _, fs := range s.targets {
			slots += len(fs)
		}
		<-s.armedMu
		st := &ReplRepairStatus{Phase: s.phase, ObjectsDone: s.done, ObjectsTotal: s.total, Slots: slots}
		s.armedMu <- struct{}{}
		repair = st
	}
	return failedOver, stale, repair
}

// emptyRespFor synthesizes the typed empty response a failed-over node
// would give: its slots were promoted away, so it holds no rows, no index
// entries and no matches. Mutating requests acknowledge vacuously — there
// is nothing on the node for them to touch.
func emptyRespFor(req any) any {
	switch req.(type) {
	case node.AllRows, node.Scan, node.ScanWithRows, node.FindMatching, node.LocateMatch:
		return node.RowsResult{}
	case node.Probe, node.FetchJoin:
		return node.Probed{}
	case node.Insert:
		return node.InsertResult{}
	case node.DeleteRows, node.DeleteMatch:
		return node.DeleteResult{}
	case node.GIScan:
		return node.GIScanResult{}
	case node.GILookup:
		return node.GIRows{}
	case node.GILen:
		return node.GILenResult{}
	case node.GIDeleteBatch:
		return node.GIDeletedBatch{}
	case node.LocalJoin:
		return node.LocalJoinResult{}
	case node.FragInfo:
		return node.FragInfoResult{}
	case node.PromoteSlots:
		return node.PromoteResult{}
	case node.GIScrubNode:
		return node.GIScrubbed{}
	default:
		return node.Ack{}
	}
}

// broadcastSkipDown fans a request out to the live nodes only,
// synthesizing typed empty responses for failed-over nodes. Only valid
// once every down node's slots are promoted (replServesComplete).
func (c *Cluster) broadcastSkipDown(from int, req any) ([]any, error) {
	mut := isMutating(req)
	var wreq any = req
	var id uint64
	tid := uint64(0)
	if mut {
		id = c.seq.Add(1)
		tid = c.curTID.Load()
		wreq = node.Seq{ID: id, TID: tid, Req: req}
	}
	out := make([]any, c.NumNodes())
	var errs []error
	for to := 0; to < c.NumNodes(); to++ {
		if c.isDown(to) {
			out[to] = emptyRespFor(req)
			continue
		}
		if mut && tid != 0 {
			c.addParticipant(to)
		}
		resp, err := c.deliver(from, to, wreq, id, mut, false)
		if err != nil {
			errs = append(errs, fmt.Errorf("netsim: broadcast to node %d: %w", to, err))
			continue
		}
		out[to] = resp
	}
	return out, errors.Join(errs...)
}
