package cluster

import (
	"fmt"
	"sort"

	"joinview/internal/catalog"
	"joinview/internal/expr"
	"joinview/internal/maintain"
	"joinview/internal/netsim"
	"joinview/internal/node"
	"joinview/internal/types"
)

// QuerySpec is an ad-hoc distributed equijoin query — the workload a data
// warehouse runs when no materialized view covers it. QueryJoin executes
// it the way a parallel RDBMS would: shuffle relations on their join
// attributes (reusing an auxiliary relation when one is already
// partitioned right — the paper notes ARs "are similar to copies of
// relations that are used to implement application specific
// partitioning"), then co-partitioned local hash joins, fully metered.
type QuerySpec struct {
	Tables []string
	Joins  []catalog.JoinPred
	// Out is the projection; empty selects every column of every table.
	Out []catalog.OutCol
}

// QueryJoin runs the query and returns the result rows with their schema
// (qualified column names). All data movement and join work charges the
// node meters, so query cost is comparable against view-scan cost.
func (c *Cluster) QueryJoin(spec QuerySpec) ([]types.Tuple, *types.Schema, error) {
	var rows []types.Tuple
	var schema *types.Schema
	err := c.withFailover(func() error {
		var err error
		rows, schema, err = c.queryJoinOnce(spec)
		return err
	})
	return rows, schema, err
}

func (c *Cluster) queryJoinOnce(spec QuerySpec) ([]types.Tuple, *types.Schema, error) {
	// Snapshot read when MVCC is on: pin the committed epochs of the query's
	// tables (plus their auxiliary relations, any of which may serve as a
	// pre-partitioned copy below) and read without table claims — concurrent
	// writers neither block this query nor leak partial statements into it.
	// Otherwise the classic locked read.
	snap, sh, snapOK := c.beginSnapshotRead(spec.Tables...)
	if snapOK {
		defer c.endSnapshotRead(snap, sh)
	} else {
		h := c.lockRead(spec.Tables...)
		defer h.Release()
	}
	epochOf := func(frag string) uint64 {
		if snap == nil {
			return 0
		}
		return snap.epoch(frag)
	}
	// Distributed joins shuffle data across every node, so a partial
	// answer cannot be assembled; fail fast (simple scans degrade to
	// partial results instead — see ScanFragmentMetered).
	if err := c.failIfDegraded(); err != nil {
		return nil, nil, err
	}
	if len(spec.Tables) == 0 {
		return nil, nil, fmt.Errorf("cluster: query needs at least one table")
	}
	var temps []string
	defer func() {
		for _, name := range temps {
			// Best-effort cleanup; a drop failure leaves only garbage
			// fragments behind.
			_, _ = c.tr.Broadcast(netsim.Coordinator, node.DropFragment{Name: name})
		}
	}()
	newTemp := func(schema *types.Schema, clusterCol string) (string, error) {
		// Cluster-wide counter: concurrent queries must not collide on
		// temp fragment names.
		name := fmt.Sprintf("__q%d", c.tempSeq.Add(1))
		if err := c.broadcast(node.CreateFragment{
			Name: name, Schema: schema, ClusterCol: clusterCol, PageRows: c.cfg.PageRows,
		}); err != nil {
			return "", err
		}
		temps = append(temps, name)
		return name, nil
	}

	first, err := c.cat.Table(spec.Tables[0])
	if err != nil {
		return nil, nil, err
	}
	// The running distributed intermediate.
	curFrag := spec.Tables[0]
	curSchema := first.Schema.Prefixed(spec.Tables[0])
	curPartCol := spec.Tables[0] + "." + first.PartitionCol
	curIsTemp := false

	covered := map[string]bool{spec.Tables[0]: true}
	remaining := append([]catalog.JoinPred(nil), spec.Joins...)

	for len(covered) < len(spec.Tables) {
		picked := -1
		for i, j := range remaining {
			if covered[j.Left] != covered[j.Right] {
				picked = i
				break
			}
		}
		if picked < 0 {
			return nil, nil, fmt.Errorf("cluster: query join graph disconnected (cartesian products unsupported)")
		}
		j := remaining[picked]
		remaining = append(remaining[:picked], remaining[picked+1:]...)
		next := j.Left
		if covered[j.Left] {
			next = j.Right
		}
		nextTable, err := c.cat.Table(next)
		if err != nil {
			return nil, nil, err
		}
		nextCol := j.ColOf(next)
		curCol := j.Other(next) + "." + j.ColOf(j.Other(next))
		if curSchema.ColIndex(curCol) < 0 {
			return nil, nil, fmt.Errorf("cluster: query intermediate lacks %s", curCol)
		}

		// Right side: in place if partitioned on the join attribute, via
		// a covering AR if one exists, otherwise shuffled.
		rightFrag := next
		rightSchema := nextTable.Schema
		rightCol := nextCol
		switch {
		case nextTable.PartitionCol == nextCol:
			// co-located already
		case func() bool {
			ar, ok := c.cat.AuxRelOn(next, nextCol, nextTable.Schema.Names())
			if ok {
				rightFrag, rightSchema = ar.Name, ar.Schema
			}
			return ok
		}():
			// full-width AR reused as the pre-partitioned copy
		default:
			tmp, err := c.shuffle(next, nextTable.Schema, nextCol, epochOf(next), newTemp)
			if err != nil {
				return nil, nil, err
			}
			rightFrag = tmp
		}

		// Left side: reshuffle unless already partitioned on the join key.
		if curPartCol != curCol {
			tmp, err := c.shuffle(curFrag, curSchema, curCol, epochOf(curFrag), newTemp)
			if err != nil {
				return nil, nil, err
			}
			if curIsTemp {
				// The consumed temp can go now.
				_, _ = c.tr.Broadcast(netsim.Coordinator, node.DropFragment{Name: curFrag})
			}
			curFrag, curIsTemp = tmp, true
			curPartCol = curCol
		}

		// Output fragment, co-partitioned on the join key. Temp fragments
		// carry qualified column names; base tables and ARs are
		// unqualified, so the physical left column differs when the
		// intermediate still is the first base table.
		leftColPhys := curCol
		if !curIsTemp {
			leftColPhys = j.ColOf(j.Other(next))
		}
		outSchema := curSchema.Concat(rightSchema.Prefixed(next))
		outFrag, err := newTemp(outSchema, curCol)
		if err != nil {
			return nil, nil, err
		}
		if _, err := c.tr.Broadcast(netsim.Coordinator, node.LocalJoin{
			Left: curFrag, Right: rightFrag,
			LeftCol: leftColPhys, RightCol: rightCol,
			Out:       outFrag,
			LeftEpoch: epochOf(curFrag), RightEpoch: epochOf(rightFrag),
		}); err != nil {
			return nil, nil, err
		}
		curFrag, curSchema, curIsTemp = outFrag, outSchema, true
		covered[next] = true
	}

	// Gather the final fragments (metered scan), apply residual cyclic
	// predicates, project.
	resps, err := c.tr.Broadcast(netsim.Coordinator, node.Scan{Frag: curFrag, Epoch: epochOf(curFrag)})
	if err != nil {
		return nil, nil, err
	}
	var rows []types.Tuple
	for _, r := range resps {
		rows = append(rows, r.(node.RowsResult).Tuples...)
	}
	rows, err = maintain.FilterResidual(rows, curSchema, remaining)
	if err != nil {
		return nil, nil, err
	}
	if len(spec.Out) == 0 {
		return rows, curSchema, nil
	}
	names := make([]string, len(spec.Out))
	for i, o := range spec.Out {
		names[i] = o.Qualified()
	}
	proj := expr.NewProjection(names)
	outSchema, err := proj.OutputSchema(curSchema)
	if err != nil {
		return nil, nil, err
	}
	out := make([]types.Tuple, 0, len(rows))
	for _, t := range rows {
		// Apply allocates the projected tuple; no defensive clone needed.
		p, err := proj.Apply(curSchema, t)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, p)
	}
	return out, outSchema, nil
}

// shuffle redistributes a fragment by the named column into a fresh temp
// fragment clustered on that column: each node's share is scanned
// (metered, at the reader's pinned epoch when versioned), bucketed and
// shipped (metered inserts + messages).
func (c *Cluster) shuffle(frag string, schema *types.Schema, col string, epoch uint64, newTemp func(*types.Schema, string) (string, error)) (string, error) {
	if schema.ColIndex(col) < 0 {
		return "", fmt.Errorf("cluster: shuffle column %q not in schema %v", col, schema.Names())
	}
	tmp, err := newTemp(schema, col)
	if err != nil {
		return "", err
	}
	for src := 0; src < c.NumNodes(); src++ {
		if c.isDown(src) && c.replServesComplete() {
			// Failed-over node: its slots live elsewhere, it has no share.
			continue
		}
		resp, err := c.call(src, node.Scan{Frag: frag, Epoch: epoch})
		if err != nil {
			return "", err
		}
		buckets, err := c.part.Spread(schema, col, resp.(node.RowsResult).Tuples)
		if err != nil {
			return "", err
		}
		for dst, bucket := range buckets {
			if len(bucket) == 0 {
				continue
			}
			if _, err := c.tr.Call(src, dst, node.Insert{Frag: tmp, Tuples: bucket}); err != nil {
				return "", err
			}
		}
	}
	return tmp, nil
}

// ScanFragmentMetered reads a whole relation or view with scan I/O charged
// (the query-side counterpart of ViewRows, which is an unmetered
// verification helper). Use it to compare "query the materialized view"
// against QueryJoin's recompute cost. When the cluster is degraded the
// surviving nodes' rows are returned together with ErrPartial.
func (c *Cluster) ScanFragmentMetered(name string) ([]types.Tuple, error) {
	// MVCC path: scan a pinned committed snapshot, no table claims.
	if snap, sh, ok := c.beginSnapshotRead(name); ok {
		defer c.endSnapshotRead(snap, sh)
		resps, err := c.tr.Broadcast(netsim.Coordinator, node.Scan{Frag: name, Epoch: snap.epoch(name)})
		if err != nil {
			return nil, err
		}
		var rows []types.Tuple
		for _, r := range resps {
			rows = append(rows, r.(node.RowsResult).Tuples...)
		}
		return rows, nil
	}
	if len(c.Degraded()) > 0 {
		if c.replOn() {
			_ = c.heal()
		}
		if c.replServesComplete() {
			// The broadcast below answers for the dead nodes with typed
			// empty responses — the read is complete, not partial.
			c.rstats.RecordFailoverRead()
		} else {
			return c.gatherPartial(name, func() any { return node.Scan{Frag: name} })
		}
	} else if !c.serialStmts() {
		// LockedReads on a concurrent transport: shared claim, queueing
		// behind in-flight writers (the pre-MVCC consistent read).
		h := c.lockRead(name)
		defer h.Release()
	}
	resps, err := c.tr.Broadcast(netsim.Coordinator, node.Scan{Frag: name})
	if err != nil {
		return nil, err
	}
	var rows []types.Tuple
	for _, r := range resps {
		rows = append(rows, r.(node.RowsResult).Tuples...)
	}
	return rows, nil
}

// sortQualified is a helper for deterministic test output.
func sortQualified(rows []types.Tuple) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Compare(rows[j]) < 0 })
}
