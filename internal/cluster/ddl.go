package cluster

import (
	"fmt"

	"joinview/internal/catalog"
	"joinview/internal/exec"
	"joinview/internal/expr"
	"joinview/internal/maintain"
	"joinview/internal/node"
	"joinview/internal/plan"
	"joinview/internal/storage"
	"joinview/internal/types"
)

// CreateTable registers a base table and allocates its fragments. If the
// table does not name a cluster column, the local layout clusters on the
// partitioning attribute, as Teradata's primary index does; an explicitly
// different ClusterCol models the paper's "naive method with clustered
// index on the join attribute" variant, which Teradata itself could not
// run.
func (c *Cluster) CreateTable(t *catalog.Table) error {
	h, err := c.lockGlobalDrained()
	if err != nil {
		return err
	}
	defer h.Release()
	if err := c.failIfMigrating(); err != nil {
		return err
	}
	if t.ClusterCol == "" {
		t.ClusterCol = t.PartitionCol
	}
	if err := c.cat.AddTable(t); err != nil {
		return err
	}
	if err := c.broadcast(node.CreateFragment{
		Name:       t.Name,
		Schema:     t.Schema,
		ClusterCol: t.ClusterCol,
		PageRows:   c.cfg.PageRows,
	}); err != nil {
		return err
	}
	for _, ix := range t.Indexes {
		if err := c.broadcast(node.CreateIndex{Frag: t.Name, Name: ix.Name, Col: ix.Col}); err != nil {
			return err
		}
	}
	return nil
}

// CreateIndex adds a non-clustered secondary index to a base table.
func (c *Cluster) CreateIndex(table, name, col string) error {
	h, err := c.lockGlobalDrained()
	if err != nil {
		return err
	}
	defer h.Release()
	if err := c.failIfMigrating(); err != nil {
		return err
	}
	if err := c.cat.AddIndex(table, catalog.Index{Name: name, Col: col}); err != nil {
		return err
	}
	return c.broadcast(node.CreateIndex{Frag: table, Name: name, Col: col})
}

// CreateAuxRel registers an auxiliary relation, allocates its fragments
// (clustered on the partition/join attribute, as §2.1.2 requires) and
// backfills it from the base table. Backfill is unmetered DDL.
func (c *Cluster) CreateAuxRel(spec *catalog.AuxRel) error {
	h, err := c.lockGlobalDrained()
	if err != nil {
		return err
	}
	defer h.Release()
	if err := c.failIfMigrating(); err != nil {
		return err
	}
	return c.createAuxRelLocked(spec)
}

func (c *Cluster) createAuxRelLocked(spec *catalog.AuxRel) error {
	if err := c.cat.AddAuxRel(spec); err != nil {
		return err
	}
	if err := c.broadcast(node.CreateFragment{
		Name:       spec.Name,
		Schema:     spec.Schema,
		ClusterCol: spec.PartitionCol,
		PageRows:   c.cfg.PageRows,
	}); err != nil {
		return err
	}
	base, err := c.cat.Table(spec.Table)
	if err != nil {
		return err
	}
	rows, err := c.gather(spec.Table)
	if err != nil {
		return err
	}
	projected, err := projectForAuxRel(base, spec, rows)
	if err != nil {
		return err
	}
	return c.spreadInsert(spec.Name, spec.Schema, spec.PartitionCol, projected, true)
}

// projectForAuxRel applies the AR's selection and projection to base rows.
func projectForAuxRel(base *catalog.Table, spec *catalog.AuxRel, rows []types.Tuple) ([]types.Tuple, error) {
	proj := expr.NewProjection(spec.Cols)
	out := make([]types.Tuple, 0, len(rows))
	for _, r := range rows {
		ok, err := expr.Matches(spec.Where, base.Schema, r)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		p, err := proj.Apply(base.Schema, r)
		if err != nil {
			return nil, err
		}
		out = append(out, p.Clone())
	}
	return out, nil
}

// spreadInsert hash-routes tuples by the named column and inserts them into
// the fragment at each destination.
func (c *Cluster) spreadInsert(frag string, schema *types.Schema, col string, tuples []types.Tuple, unmetered bool) error {
	buckets, err := c.part.Spread(schema, col, tuples)
	if err != nil {
		return err
	}
	for n, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		if _, err := c.call(n, node.Insert{Frag: frag, Tuples: bucket, Unmetered: unmetered}); err != nil {
			return err
		}
	}
	return nil
}

// CreateGlobalIndex registers a global index, allocates its fragments and
// backfills it from the base table. The distributed-clustered property is
// derived from the base table's local layout.
func (c *Cluster) CreateGlobalIndex(spec *catalog.GlobalIndex) error {
	h, err := c.lockGlobalDrained()
	if err != nil {
		return err
	}
	defer h.Release()
	if err := c.failIfMigrating(); err != nil {
		return err
	}
	return c.createGlobalIndexLocked(spec)
}

func (c *Cluster) createGlobalIndexLocked(spec *catalog.GlobalIndex) error {
	if err := c.cat.AddGlobalIndex(spec); err != nil {
		return err
	}
	if err := c.broadcast(node.CreateGlobalIndex{Name: spec.Name, DistClustered: spec.DistClustered}); err != nil {
		return err
	}
	t, err := c.cat.Table(spec.Table)
	if err != nil {
		return err
	}
	ci := t.Schema.MustColIndex(spec.Col)
	// Per source node: read (row id, tuple) pairs, then batch entries to
	// each global-index home node.
	for src := 0; src < c.NumNodes(); src++ {
		resp, err := c.call(src, node.ScanWithRows{Frag: spec.Table})
		if err != nil {
			return err
		}
		rr := resp.(node.RowsResult)
		batchVals := make([][]types.Value, c.NumNodes())
		batchGs := make([][]storage.GlobalRowID, c.NumNodes())
		for i, tup := range rr.Tuples {
			v := tup[ci]
			home := c.part.NodeFor(v)
			batchVals[home] = append(batchVals[home], v)
			batchGs[home] = append(batchGs[home], storage.GlobalRowID{Node: int32(src), Row: rr.Rows[i]})
		}
		for home := range batchVals {
			if len(batchVals[home]) == 0 {
				continue
			}
			if _, err := c.call(home, node.GIInsertBatch{GI: spec.Name, Vals: batchVals[home], Gs: batchGs[home]}); err != nil {
				return err
			}
		}
	}
	return nil
}

// EnsureStructures creates the auxiliary relations and/or global indexes
// the view's strategy requires, skipping any that already exist. Auto
// creates both kinds so the cost-based chooser can pick per update.
func (c *Cluster) EnsureStructures(v *catalog.View) error {
	h, err := c.lockGlobalDrained()
	if err != nil {
		return err
	}
	defer h.Release()
	if err := c.failIfMigrating(); err != nil {
		return err
	}
	return c.ensureStructuresLocked(v)
}

func (c *Cluster) ensureStructuresLocked(v *catalog.View) error {
	wantAR := v.Strategy == catalog.StrategyAuxRel || v.Strategy == catalog.StrategyAuto
	wantGI := v.Strategy == catalog.StrategyGlobalIndex || v.Strategy == catalog.StrategyAuto
	for _, s := range v.Overrides {
		wantAR = wantAR || s == catalog.StrategyAuxRel || s == catalog.StrategyAuto
		wantGI = wantGI || s == catalog.StrategyGlobalIndex || s == catalog.StrategyAuto
	}
	if wantAR {
		specs, err := plan.AuxRelSpecs(c.cat, v)
		if err != nil {
			return err
		}
		for i := range specs {
			spec := specs[i]
			need := spec.Cols
			if have, ok := c.cat.AuxRelOn(spec.Table, spec.PartitionCol, need); ok {
				// Deduplicated: the existing AR covers this view's needs.
				// Record the reference so it outlives the other views.
				c.cat.RefAuxRel(have.Name, v.Name)
				continue
			}
			// Another view may hold the derived name with a narrower
			// column set (§2.1.2's redundancy: AR_A1 vs AR_A2); pick a
			// fresh name rather than failing.
			base := spec.Name
			for n := 2; ; n++ {
				if _, err := c.cat.AuxRel(spec.Name); err != nil {
					break
				}
				spec.Name = fmt.Sprintf("%s_%d", base, n)
			}
			spec.AutoCreated = true
			if err := c.createAuxRelLocked(&spec); err != nil {
				return fmt.Errorf("cluster: ensuring AR for view %q: %w", v.Name, err)
			}
			c.cat.RefAuxRel(spec.Name, v.Name)
		}
	}
	if wantGI {
		specs, err := plan.GlobalIndexSpecs(c.cat, v)
		if err != nil {
			return err
		}
		for i := range specs {
			spec := specs[i]
			if _, ok := c.cat.GlobalIndexOn(spec.Table, spec.Col); ok {
				continue
			}
			if err := c.createGlobalIndexLocked(&spec); err != nil {
				return fmt.Errorf("cluster: ensuring GI for view %q: %w", v.Name, err)
			}
		}
	}
	return nil
}

// CreateView validates and registers a join view, creates any auxiliary
// structures its strategy needs, allocates the view fragments (clustered
// on the view's partitioning attribute) and materializes the initial
// contents with a coordinator-side join. DDL work is unmetered.
func (c *Cluster) CreateView(v *catalog.View) error {
	h, err := c.lockGlobalDrained()
	if err != nil {
		return err
	}
	defer h.Release()
	if err := c.failIfMigrating(); err != nil {
		return err
	}
	if err := c.cat.AddView(v); err != nil {
		return err
	}
	if err := c.ensureStructuresLocked(v); err != nil {
		return err
	}
	if err := c.broadcast(node.CreateFragment{
		Name:       v.Name,
		Schema:     v.Schema,
		ClusterCol: v.PartitionQualified(),
		PageRows:   c.cfg.PageRows,
	}); err != nil {
		return err
	}
	content, err := c.computeJoin(v)
	if err != nil {
		return err
	}
	return c.spreadInsert(v.Name, v.Schema, v.PartitionQualified(), content, true)
}

// DropView removes a view and its fragments. Auxiliary relations that were
// auto-created for view maintenance are reference-counted: when the dropped
// view was the last one using an auto-created AR, the AR and its fragments
// go with it. User-created ARs and global indexes stay (drop them
// explicitly with DropAuxRel/DropGlobalIndex).
func (c *Cluster) DropView(name string) error {
	h, err := c.lockGlobalDrained()
	if err != nil {
		return err
	}
	defer h.Release()
	if err := c.failIfMigrating(); err != nil {
		return err
	}
	if err := c.cat.DropView(name); err != nil {
		return err
	}
	if err := c.broadcast(node.DropFragment{Name: name}); err != nil {
		return err
	}
	for _, ar := range c.cat.UnrefViewAuxRels(name) {
		if err := c.cat.DropAuxRel(ar); err != nil {
			return err
		}
		if err := c.broadcast(node.DropFragment{Name: ar}); err != nil {
			return err
		}
	}
	return nil
}

// DropAuxRel removes an auxiliary relation and its fragments. It refuses
// if a view's maintenance still depends on it.
func (c *Cluster) DropAuxRel(name string) error {
	h, err := c.lockGlobalDrained()
	if err != nil {
		return err
	}
	defer h.Release()
	if err := c.failIfMigrating(); err != nil {
		return err
	}
	ar, err := c.cat.AuxRel(name)
	if err != nil {
		return err
	}
	if v := c.viewNeedingAuxRel(ar); v != "" {
		return fmt.Errorf("cluster: auxiliary relation %q is needed by view %q", name, v)
	}
	if err := c.cat.DropAuxRel(name); err != nil {
		return err
	}
	return c.broadcast(node.DropFragment{Name: name})
}

// viewNeedingAuxRel reports a view whose auxrel-strategy maintenance would
// lose its only covering AR, or "" if none.
func (c *Cluster) viewNeedingAuxRel(ar *catalog.AuxRel) string {
	for _, vn := range c.cat.Views() {
		v, _ := c.cat.View(vn)
		if !v.HasTable(ar.Table) {
			continue
		}
		usesAR := v.Strategy == catalog.StrategyAuxRel || v.Strategy == catalog.StrategyAuto
		for _, s := range v.Overrides {
			usesAR = usesAR || s == catalog.StrategyAuxRel || s == catalog.StrategyAuto
		}
		if !usesAR {
			continue
		}
		for _, jc := range v.JoinCols(ar.Table) {
			if jc != ar.PartitionCol {
				continue
			}
			// Is there another covering AR?
			covered := false
			for _, other := range c.cat.AuxRelsFor(ar.Table) {
				if other.Name != ar.Name && other.PartitionCol == jc {
					covered = true
					break
				}
			}
			if !covered {
				return vn
			}
		}
	}
	return ""
}

// DropGlobalIndex removes a global index and its fragments.
func (c *Cluster) DropGlobalIndex(name string) error {
	h, err := c.lockGlobalDrained()
	if err != nil {
		return err
	}
	defer h.Release()
	if err := c.failIfMigrating(); err != nil {
		return err
	}
	if err := c.cat.DropGlobalIndex(name); err != nil {
		return err
	}
	return c.broadcast(node.DropGlobalIndexFrag{Name: name})
}

// DropTable removes a base table, cascading over its auxiliary relations
// and global indexes; it refuses while any view references the table.
func (c *Cluster) DropTable(name string) error {
	h, err := c.lockGlobalDrained()
	if err != nil {
		return err
	}
	defer h.Release()
	if err := c.failIfMigrating(); err != nil {
		return err
	}
	if _, err := c.cat.Table(name); err != nil {
		return err
	}
	if vs := c.cat.ViewsOn(name); len(vs) > 0 {
		return fmt.Errorf("cluster: table %q is referenced by view %q (drop the view first)", name, vs[0].Name)
	}
	for _, ar := range c.cat.AuxRelsFor(name) {
		if err := c.cat.DropAuxRel(ar.Name); err != nil {
			return err
		}
		if err := c.broadcast(node.DropFragment{Name: ar.Name}); err != nil {
			return err
		}
	}
	for _, gi := range c.cat.GlobalIndexesFor(name) {
		if err := c.cat.DropGlobalIndex(gi.Name); err != nil {
			return err
		}
		if err := c.broadcast(node.DropGlobalIndexFrag{Name: gi.Name}); err != nil {
			return err
		}
	}
	if err := c.cat.DropTable(name); err != nil {
		return err
	}
	return c.broadcast(node.DropFragment{Name: name})
}

// computeJoin evaluates the view's full join at the coordinator with
// in-memory hash joins, returning view-schema tuples. Used for initial
// materialization and for the recompute reference in verification.
func (c *Cluster) computeJoin(v *catalog.View) ([]types.Tuple, error) {
	first, err := c.cat.Table(v.Tables[0])
	if err != nil {
		return nil, err
	}
	cur, err := c.gather(v.Tables[0])
	if err != nil {
		return nil, err
	}
	curSchema := first.Schema.Prefixed(v.Tables[0])
	covered := map[string]bool{v.Tables[0]: true}
	remaining := append([]catalog.JoinPred(nil), v.Joins...)

	for len(covered) < len(v.Tables) {
		picked := -1
		for i, j := range remaining {
			if covered[j.Left] != covered[j.Right] {
				picked = i
				break
			}
		}
		if picked < 0 {
			return nil, fmt.Errorf("cluster: view %q join graph disconnected", v.Name)
		}
		j := remaining[picked]
		remaining = append(remaining[:picked], remaining[picked+1:]...)
		next := j.Left
		if covered[j.Left] {
			next = j.Right
		}
		nextTable, err := c.cat.Table(next)
		if err != nil {
			return nil, err
		}
		nextRows, err := c.gather(next)
		if err != nil {
			return nil, err
		}
		leftIdx := curSchema.ColIndex(j.Other(next) + "." + j.ColOf(j.Other(next)))
		if leftIdx < 0 {
			return nil, fmt.Errorf("cluster: join column missing in intermediate for view %q", v.Name)
		}
		rightIdx := nextTable.Schema.MustColIndex(j.ColOf(next))
		cur, err = exec.HashJoin(cur, leftIdx, nextRows, rightIdx)
		if err != nil {
			return nil, err
		}
		curSchema = curSchema.Concat(nextTable.Schema.Prefixed(next))
		covered[next] = true
	}

	// Residual join predicates: the extra edges of a cyclic join graph
	// (the §2.2 complete-join example) filter the assembled tuples.
	cur, err = maintain.FilterResidual(cur, curSchema, remaining)
	if err != nil {
		return nil, err
	}

	proj := expr.NewProjection(v.MaintenanceProjection())
	out := make([]types.Tuple, 0, len(cur))
	for _, t := range cur {
		p, err := proj.Apply(curSchema, t)
		if err != nil {
			return nil, err
		}
		out = append(out, p.Clone())
	}
	if v.IsAggregate() {
		return maintain.FoldAggRows(v, out)
	}
	return out, nil
}

// RecomputeView evaluates the view's definition from the current base
// relations (ignoring the materialized fragments). Tests and the
// consistency checker compare this against ViewRows.
func (c *Cluster) RecomputeView(name string) ([]types.Tuple, error) {
	v, err := c.cat.View(name)
	if err != nil {
		return nil, err
	}
	return c.computeJoin(v)
}

// CheckViewConsistency verifies that the materialized content of the view
// equals a from-scratch recomputation of its definition (bag equality).
// This is the paper's core correctness obligation for every maintenance
// method.
func (c *Cluster) CheckViewConsistency(name string) error {
	stored, err := c.ViewRows(name)
	if err != nil {
		return err
	}
	want, err := c.RecomputeView(name)
	if err != nil {
		return err
	}
	if len(stored) != len(want) {
		return fmt.Errorf("cluster: view %q has %d rows, recompute gives %d", name, len(stored), len(want))
	}
	counts := map[uint64]int{}
	for _, t := range want {
		counts[t.Hash()]++
	}
	for _, t := range stored {
		h := t.Hash()
		counts[h]--
		if counts[h] < 0 {
			return fmt.Errorf("cluster: view %q stores tuple %v not in recompute", name, t)
		}
	}
	return nil
}
