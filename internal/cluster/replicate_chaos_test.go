package cluster

import (
	"fmt"
	"testing"

	"joinview/internal/expr"
	"joinview/internal/fault"
	"joinview/internal/types"
)

// TestReplicationChaosMatrix is the failover acceptance matrix: every view
// strategy, on both transports, losing a slot's primary or its follower,
// with the crash landing either inside a DML statement or inside an async
// flush. In every cell the statement stream sees ZERO errors — the first
// statement that notices the crash fails over internally and retries —
// reads stay complete (never ErrPartial), and after restart plus
// ReplicateRepair the replica invariant and the view definition both hold.
func TestReplicationChaosMatrix(t *testing.T) {
	transports := map[bool]string{false: "direct", true: "chan"}
	seed := int64(97)
	for _, strat := range allStrategies {
		for _, useChan := range []bool{false, true} {
			for _, role := range []string{"crash-primary", "crash-follower"} {
				for _, timing := range []string{"during-dml", "during-flush"} {
					strat, useChan, role, timing := strat, useChan, role, timing
					seed++
					cellSeed := seed
					name := fmt.Sprintf("%s/%s/%s/%s", strat, transports[useChan], role, timing)
					t.Run(name, func(t *testing.T) {
						inj := fault.New(fault.Config{Seed: cellSeed})
						cfg := Config{
							Nodes: 4, ReplicationFactor: 2, Faults: inj,
							RetryAttempts: 3, UseChannels: useChan, Durability: true,
						}
						async := timing == "during-flush"
						if async {
							cfg.AsyncMaintenance = true
						}
						c := newReplicatedTPCR(t, cfg, 6, 2, 0)
						if err := c.CreateView(jv1Def("jv1", strat)); err != nil {
							t.Fatal(err)
						}
						m := c.part.Map()
						victim := m.Owner[0]
						if role == "crash-follower" {
							victim = m.Repl[0][0]
						}

						live := 12 // seeded orders rows
						nextOK := int64(2000)
						dml := func(stage string, n int) {
							t.Helper()
							for i := 0; i < n; i++ {
								nextOK++
								if err := c.Insert("orders", []types.Tuple{ord(nextOK, nextOK%6, 1.0)}); err != nil {
									t.Fatalf("%s: insert %d: %v", stage, nextOK, err)
								}
								live++
							}
						}

						dml("healthy", 4)
						if async {
							// Land the crash inside the flush pipeline; the
							// flush itself must fail over and complete.
							inj.CrashAtPhase("flush", victim)
							if err := c.Flush(); err != nil {
								t.Fatalf("flush with crash: %v", err)
							}
						} else {
							// Land the crash a few deliveries into a statement.
							inj.CrashAfter(victim, 3)
							dml("crashing", 10)
							if _, err := c.Delete("orders", expr.Cmp{Op: expr.EQ,
								L: expr.Col{Name: "orderkey"}, R: expr.Const{V: types.Int(2001)}}); err != nil {
								t.Fatalf("delete after crash: %v", err)
							}
							live--
						}
						if !inj.Down(victim) {
							t.Fatalf("victim %d never crashed", victim)
						}
						dml("degraded", 4)
						if async {
							if err := c.Flush(); err != nil {
								t.Fatalf("degraded flush: %v", err)
							}
						}

						// Reads stay complete under one lost node.
						rows, err := c.TableRows("orders")
						if err != nil {
							t.Fatalf("TableRows degraded: %v", err)
						}
						if len(rows) != live {
							t.Fatalf("TableRows = %d rows, want %d", len(rows), live)
						}
						if err := c.CheckViewConsistency("jv1"); err != nil {
							t.Fatalf("view consistency degraded: %v", err)
						}

						// Restart, re-replicate, verify full strength.
						inj.Restart(victim)
						if err := c.ReplicateRepair(); err != nil {
							t.Fatalf("ReplicateRepair: %v", err)
						}
						if d := c.Degraded(); len(d) != 0 {
							t.Fatalf("still degraded after repair: %v", d)
						}
						checkReplicaConsistency(t, c)
						if err := c.CheckViewConsistency("jv1"); err != nil {
							t.Fatalf("view consistency after repair: %v", err)
						}
						if err := c.CheckAllStructures(); err != nil {
							t.Fatalf("structures after repair: %v", err)
						}
						// The revived node serves writes again.
						dml("repaired", 3)
						if async {
							if err := c.Flush(); err != nil {
								t.Fatalf("repaired flush: %v", err)
							}
						}
						checkReplicaConsistency(t, c)
					})
				}
			}
		}
	}
}
