package cluster

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"joinview/internal/catalog"
	"joinview/internal/fault"
	"joinview/internal/netsim"
	"joinview/internal/node"
	"joinview/internal/storage"
	"joinview/internal/types"
)

// ErrDegraded marks a statement refused because a data-server node is down:
// maintenance must touch every fragment of the affected structures, so a
// write cannot commit consistently until the node recovers.
var ErrDegraded = errors.New("cluster: degraded (node down)")

// ErrPartial marks a read answered from the surviving nodes only. The rows
// returned alongside it are valid but incomplete.
var ErrPartial = errors.New("cluster: partial result (node down)")

// ErrSuspect marks a call refused because the destination's circuit
// breaker is open: the node failed BreakerThreshold consecutive delivery
// attempts, so the coordinator fails fast instead of burning the full
// retry/backoff budget on every statement. Recover/RestartNode close the
// breaker.
var ErrSuspect = errors.New("cluster: node suspect (circuit breaker open)")

// breakerOpen reports whether the node's circuit breaker is open.
func (c *Cluster) breakerOpen(n int) bool {
	if c.cfg.BreakerThreshold <= 0 {
		return false
	}
	c.brkMu.Lock()
	defer c.brkMu.Unlock()
	return c.brkOpen[n]
}

// breakerOK records a successful delivery: the consecutive-failure count
// resets (an open breaker stays open until explicit recovery — a stray
// late success must not half-open it under the statement path).
func (c *Cluster) breakerOK(n int) {
	if c.cfg.BreakerThreshold <= 0 {
		return
	}
	c.brkMu.Lock()
	defer c.brkMu.Unlock()
	c.brkConsec[n] = 0
}

// breakerFail records an exhausted delivery (retry budget burned on
// timeouts/transient faults); at BreakerThreshold consecutive failures the
// node becomes suspect.
func (c *Cluster) breakerFail(n int) {
	if c.cfg.BreakerThreshold <= 0 {
		return
	}
	c.brkMu.Lock()
	opened := false
	c.brkConsec[n]++
	if c.brkConsec[n] >= c.cfg.BreakerThreshold {
		if !c.brkOpen[n] {
			opened = true
		}
		c.brkOpen[n] = true
	}
	c.brkMu.Unlock()
	// Under replication a suspect node is treated as down outright: its
	// slots fail over to followers instead of the cluster limping along
	// refusing calls to it.
	if opened && c.replOn() {
		c.noteDown(n)
	}
}

// breakerReset closes a node's breaker after successful recovery.
func (c *Cluster) breakerReset(n int) {
	c.brkMu.Lock()
	defer c.brkMu.Unlock()
	delete(c.brkOpen, n)
	delete(c.brkConsec, n)
}

// Suspect lists nodes with open circuit breakers (sorted).
func (c *Cluster) Suspect() []int {
	c.brkMu.Lock()
	out := make([]int, 0, len(c.brkOpen))
	for n := range c.brkOpen {
		out = append(out, n)
	}
	c.brkMu.Unlock()
	sort.Ints(out)
	return out
}

// resilientTransport is the coordinator's delivery layer: every call to the
// underlying transport (possibly fault-injecting) gets bounded retries with
// exponential backoff for transient failures, sequence-number wrapping of
// mutating requests so retries are idempotent, in-doubt resolution via
// SeqQuery when the retry budget runs out, and node-down bookkeeping that
// moves the cluster into degraded mode. It implements netsim.Transport, so
// installing it as maintain.Env's transport upgrades every maintenance path
// without touching the call sites.
type resilientTransport struct {
	c *Cluster
}

// isMutating reports whether a request changes node state, and therefore
// needs sequence-number dedup for safe retry. Reads are naturally
// idempotent and go unwrapped. The classification lives in the node
// package (node.IsMutating) next to the request types and the redo log
// that shares it.
func isMutating(req any) bool { return node.IsMutating(req) }

// backoffDelay computes the sleep before retry attempt (attempt >= 1):
// exponential doubling from base, shift-clamped and capped by max, then
// jittered into [d/2, d) so concurrent retry loops desynchronize. jitter
// returns a value in [0, n); a deterministic seeded source keeps test runs
// repeatable. Zero base disables sleeping entirely.
func backoffDelay(base, max time.Duration, attempt int, jitter func(n int64) int64) time.Duration {
	if base <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 16 {
		shift = 16 // 1<<17 on any sane base is already past every cap
	}
	d := base << shift
	if d <= 0 || (max > 0 && d > max) {
		d = max
	}
	if half := d / 2; half > 0 {
		d = half + time.Duration(jitter(int64(half)))
	}
	return d
}

// jitter draws from the cluster's seeded backoff rng.
func (c *Cluster) jitter(n int64) int64 {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.rng.Int63n(n)
}

// sleepBackoff counts the retry and sleeps the bounded, jittered backoff.
func (c *Cluster) sleepBackoff(attempt int) {
	c.retries.Add(1)
	if d := backoffDelay(c.cfg.RetryBackoff, c.cfg.RetryBackoffMax, attempt, c.jitter); d > 0 {
		time.Sleep(d)
	}
}

// Call implements netsim.Transport.
func (t *resilientTransport) Call(from, to int, req any) (any, error) {
	return t.c.resilientCall(from, to, req, false)
}

// Broadcast implements netsim.Transport. The fan-out runs once through the
// inner transport (preserving its message accounting and, for the channel
// transport, its parallel delivery); slots that failed are then retried
// individually under the same sequence number, so a node that executed the
// request but lost the reply answers the retry from its dedup cache.
func (t *resilientTransport) Broadcast(from int, req any) ([]any, error) {
	c := t.c
	if n, degraded := c.firstDown(); degraded {
		// Once every down node's slots are promoted to followers, the
		// broadcast proceeds on the survivors: the dead nodes hold no data,
		// so typed empty responses stand in for them.
		if c.replServesComplete() {
			return c.broadcastSkipDown(from, req)
		}
		return nil, fault.NodeDownError{Node: n}
	}
	wreq, id, mut := req, uint64(0), isMutating(req)
	if mut && !c.lean {
		id = c.seq.Add(1)
		tid := c.curTID.Load()
		wreq = node.Seq{ID: id, TID: tid, Req: req}
		if tid != 0 {
			for n := 0; n < c.inner.NumNodes(); n++ {
				c.addParticipant(n)
			}
		}
	}
	out, err := c.inner.Broadcast(from, wreq)
	if err == nil {
		if mut {
			for to, resp := range out {
				c.tapMutation(to, wreq, resp)
			}
		}
		return out, nil
	}
	if out == nil {
		out = make([]any, c.inner.NumNodes())
	}
	var errs []error
	for to := range out {
		if out[to] != nil {
			continue
		}
		var resp any
		var cerr error
		if c.lean {
			// Unwrapped single re-attempt; see resilientCall's fast path.
			resp, cerr = c.inner.Call(from, to, wreq)
			if cerr == nil && mut {
				c.tapMutation(to, wreq, resp)
			}
		} else {
			resp, cerr = c.deliver(from, to, wreq, id, mut, false)
		}
		if cerr != nil {
			errs = append(errs, fmt.Errorf("netsim: broadcast to node %d: %w", to, cerr))
			continue
		}
		out[to] = resp
	}
	return out, errors.Join(errs...)
}

// NumNodes implements netsim.Transport.
func (t *resilientTransport) NumNodes() int { return t.c.inner.NumNodes() }

// Stats implements netsim.Transport.
func (t *resilientTransport) Stats() netsim.Stats { return t.c.inner.Stats() }

// ResetStats implements netsim.Transport.
func (t *resilientTransport) ResetStats() { t.c.inner.ResetStats() }

// Close implements netsim.Transport.
func (t *resilientTransport) Close() { t.c.inner.Close() }

// resilientCall delivers one request with the full retry/dedup/in-doubt
// protocol. undo marks compensating actions: when the destination is (or
// becomes) unreachable, the request is queued for replay during Recover and
// the failure is absorbed, because a rollback must make as much progress as
// it can rather than abandon the surviving nodes.
func (c *Cluster) resilientCall(from, to int, req any, undo bool) (any, error) {
	mut := isMutating(req)
	if c.lean {
		// Fast path: without faults, timeouts, durability or a breaker a
		// delivery cannot spuriously fail, so the sequence envelope (whose
		// sole job is retry dedup) and the retry/in-doubt loop are pure
		// overhead. Node-down bookkeeping stays: MarkNodeDown and broken
		// real-socket connections still surface here.
		if c.isDown(to) {
			if undo && mut {
				c.queueRepair(to, repair{kind: repairRedo, id: c.seq.Add(1), req: req})
				return nil, nil
			}
			return nil, fault.NodeDownError{Node: to}
		}
		resp, err := c.inner.Call(from, to, req)
		if err != nil {
			return nil, err
		}
		if mut {
			c.tapMutation(to, req, resp)
		}
		return resp, nil
	}
	if c.isDown(to) {
		if undo && mut {
			// In durable mode the compensation is simply absorbed: the
			// crashed node undoes the transaction itself at recovery, from
			// its own log (presumed abort), so queueing the undo here would
			// double-apply it.
			c.queueRepair(to, repair{kind: repairRedo, id: c.seq.Add(1), req: req})
			return nil, nil
		}
		return nil, fault.NodeDownError{Node: to}
	}
	var wreq any = req
	var id uint64
	if mut {
		id = c.seq.Add(1)
		tid := c.curTID.Load()
		wreq = node.Seq{ID: id, TID: tid, Req: req}
		if tid != 0 {
			c.addParticipant(to)
		}
	}
	return c.deliver(from, to, wreq, id, mut, undo)
}

// deliver runs the bounded retry loop for an already-wrapped request, then
// resolves in-doubt outcomes.
func (c *Cluster) deliver(from, to int, wreq any, id uint64, mut, undo bool) (any, error) {
	raw := wreq
	if s, ok := wreq.(node.Seq); ok {
		raw = s.Req
	}
	if c.breakerOpen(to) {
		return nil, fmt.Errorf("%w: node %d", ErrSuspect, to)
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.RetryAttempts; attempt++ {
		if attempt > 0 {
			c.sleepBackoff(attempt)
		}
		resp, err := c.inner.Call(from, to, wreq)
		if err == nil {
			c.breakerOK(to)
			if mut {
				c.tapMutation(to, wreq, resp)
			}
			return resp, nil
		}
		lastErr = err
		if n, down := fault.IsNodeDown(err); down {
			// The fault layer refuses deliveries to a crashed node before
			// they reach it, so the request was not applied.
			c.noteDown(n)
			if undo && mut {
				c.queueRepair(to, repair{kind: repairRedo, id: id, req: raw})
				return nil, nil
			}
			// Tag with ErrDegraded so the statement that discovers the
			// crash fails the same way every later statement will.
			return nil, fmt.Errorf("%w: %w", ErrDegraded, err)
		}
		if !fault.IsTransient(err) {
			return nil, err
		}
	}
	if !mut {
		c.breakerFail(to)
		return nil, lastErr
	}
	// Retry budget exhausted on a transient failure: the node may or may
	// not have applied the request (a lost reply looks identical to a lost
	// request). Ask it.
	resp, applied, qerr := c.resolveInDoubt(from, to, id)
	if qerr == nil {
		c.breakerOK(to)
		if applied {
			c.tapMutation(to, wreq, resp)
			return resp, nil
		}
		return nil, lastErr
	}
	c.breakerFail(to)
	// The node cannot even answer the outcome query: treat it as down and
	// leave a repair record for Recover.
	c.noteDown(to)
	if undo {
		c.queueRepair(to, repair{kind: repairRedo, id: id, req: raw})
		return nil, nil
	}
	c.queueRepair(to, repair{kind: repairInDoubt, id: id, req: raw})
	return nil, fmt.Errorf("cluster: call to node %d in doubt: %w", to, lastErr)
}

// resolveInDoubt asks the node whether it applied the sequence number,
// retrying the (idempotent) query itself through the fault storm.
func (c *Cluster) resolveInDoubt(from, to int, id uint64) (any, bool, error) {
	var lastErr error
	for attempt := 0; attempt < c.cfg.RetryAttempts; attempt++ {
		if attempt > 0 {
			c.sleepBackoff(attempt)
		}
		resp, err := c.inner.Call(from, to, node.SeqQuery{ID: id})
		if err == nil {
			r := resp.(node.SeqQueryResult)
			return r.Resp, r.Applied, nil
		}
		lastErr = err
		if !fault.IsTransient(err) {
			return nil, false, err
		}
	}
	return nil, false, lastErr
}

// rawCall delivers recovery traffic over the raw transport with transient
// retries. Mutating requests get a fresh sequence envelope so a retried
// delivery cannot double-apply — repair crosses the same faulty network as
// maintenance. Unlike resilientCall it ignores the degraded set (Recover
// talks to nodes still marked down) and surfaces in-doubt outcomes as
// plain errors: Recover's work is idempotent, so the operator reruns it.
func (c *Cluster) rawCall(to int, req any) (any, error) {
	var wreq any = req
	if isMutating(req) {
		wreq = node.Seq{ID: c.seq.Add(1), Req: req}
	}
	return c.rawDeliver(to, wreq)
}

// rawDeliver is rawCall's retry loop for an already-wrapped request.
func (c *Cluster) rawDeliver(to int, wreq any) (any, error) {
	var lastErr error
	for attempt := 0; attempt < c.cfg.RetryAttempts; attempt++ {
		if attempt > 0 {
			c.sleepBackoff(attempt)
		}
		resp, err := c.inner.Call(netsim.Coordinator, to, wreq)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !fault.IsTransient(err) {
			return nil, err
		}
	}
	return nil, lastErr
}

// undoCall delivers a compensating action. Unreachable destinations are
// absorbed: the request is queued and replayed during Recover against the
// node's preserved (durable) state. Under replication an absorbed undo is
// additionally mirrored to the destination's followers, whose shadows
// already hold the statement's forward writes (an absorbed call returns
// resp == nil with a nil error).
func (c *Cluster) undoCall(to int, req any) error {
	resp, err := c.resilientCall(netsim.Coordinator, to, req, true)
	if err == nil && resp == nil {
		c.mirrorAsIfApplied(to, req)
	}
	return err
}

// undoCallRows is undoCall for delete-by-rowid compensations, whose
// request alone cannot drive the shadow mirror: tuples carries the doomed
// rows' contents so an absorbed undo still deletes the mirrored copies.
func (c *Cluster) undoCallRows(to int, req node.DeleteRows, tuples []types.Tuple) error {
	resp, err := c.resilientCall(netsim.Coordinator, to, req, true)
	if err == nil && resp == nil && len(tuples) > 0 {
		c.mirrorMutation(to, req, node.DeleteResult{Tuples: tuples})
	}
	return err
}

// absorbNodeDown drops node-down failures from a derived-structure undo
// (auxiliary relation, global index or view compensation): Recover rebuilds
// the crashed node's derived fragments from the base relations, which
// subsumes the unapplied undo. Other failures keep propagating.
func absorbNodeDown(err error) error {
	if err == nil {
		return nil
	}
	if _, down := fault.IsNodeDown(err); down {
		return nil
	}
	return err
}

// repairKind distinguishes what Recover must do with a queued request.
type repairKind uint8

const (
	// repairRedo is a compensating action that could not reach the node:
	// replay it (under its original sequence number, so a delivery that
	// did land is deduplicated).
	repairRedo repairKind = iota
	// repairInDoubt is forward work whose outcome is unknown and whose
	// statement was rolled back: if the node applied it, apply the inverse.
	repairInDoubt
)

type repair struct {
	kind repairKind
	id   uint64
	req  any
}

func (c *Cluster) noteDown(n int) {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	c.downNodes[n] = true
}

func (c *Cluster) isDown(n int) bool {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	return c.downNodes[n]
}

func (c *Cluster) firstDown() (int, bool) {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	best, found := 0, false
	for n := range c.downNodes {
		if !found || n < best {
			best, found = n, true
		}
	}
	return best, found
}

func (c *Cluster) queueRepair(n int, r repair) {
	if c.cfg.Durability {
		// A durable node recovers from its own log: undecided transactions
		// are aborted locally (ResolveAbort), which subsumes both queued
		// compensations and in-doubt inversions. Queueing them as well
		// would undo the same work twice.
		return
	}
	c.dmu.Lock()
	defer c.dmu.Unlock()
	c.repairs[n] = append(c.repairs[n], r)
}

func (c *Cluster) takeRepairs(n int) []repair {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	rs := c.repairs[n]
	delete(c.repairs, n)
	return rs
}

// Degraded returns the nodes the coordinator currently considers down
// (sorted; empty when the cluster is healthy). A crash is discovered
// lazily, by the first delivery that fails against the crashed node.
func (c *Cluster) Degraded() []int {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	out := make([]int, 0, len(c.downNodes))
	for n := range c.downNodes {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// failIfDegraded refuses DML while any node is down: every maintenance
// flow must reach all fragments of the affected structures, so failing
// fast (and letting the caller retry after Recover) beats starting work
// that is guaranteed to roll back.
func (c *Cluster) failIfDegraded() error {
	if down := c.Degraded(); len(down) > 0 {
		// With every down node failed over, the survivors hold a complete
		// copy of every structure: DML proceeds at full strength.
		if c.replServesComplete() {
			return nil
		}
		return fmt.Errorf("%w: nodes %v unavailable", ErrDegraded, down)
	}
	return nil
}

// MarkNodeDown tells the coordinator a node is unavailable without waiting
// for a delivery to fail against it (an external failure detector, or a
// test arranging a deterministic degraded state).
func (c *Cluster) MarkNodeDown(n int) error {
	if n < 0 || n >= c.NumNodes() {
		return fmt.Errorf("cluster: node %d out of range [0,%d)", n, c.NumNodes())
	}
	c.noteDown(n)
	return nil
}

// Recover repairs a restarted node and returns the cluster to service.
//
// In Durability mode it is per-node log replay: restart the node from its
// checkpoint + log tail and resolve its in-doubt transactions against the
// coordinator's decision log (commit if a decision was forced, local
// inverse replay otherwise — presumed abort). No other node is touched.
//
// Without durability, the legacy fail-stop-with-durable-storage model:
//
//  1. verify the node answers (it must have been restarted at the
//     transport/fault layer first);
//  2. drain the node's repair queue in order — replay compensating actions
//     that could not be delivered, and resolve in-doubt calls by querying
//     their sequence numbers and inverting any that were applied (their
//     statements rolled back at the surviving nodes);
//  3. clear the node from the degraded set;
//  4. once every node is back, rebuild the derived fragments (auxiliary
//     relations, global indexes, view fragments) of all recovered nodes
//     from the base relations, using the same gather/backfill machinery
//     DDL uses.
func (c *Cluster) Recover(n int) error {
	if c.replOn() {
		// Under replication the node's slots were (or will be) promoted
		// away; bringing it back is a re-replication round, not a replay.
		return c.ReplicateRepair()
	}
	_, err := c.RecoverWithReport(n)
	return err
}

// RecoverWithReport is Recover returning the recovery cost accounting:
// what mode ran, pages read and replayed, repairs drained, in-doubt
// transactions resolved, and the I/O and message cost.
func (c *Cluster) RecoverWithReport(n int) (RecoveryReport, error) {
	h := c.lockGlobal()
	defer h.Release()
	if n < 0 || n >= c.NumNodes() {
		return RecoveryReport{}, fmt.Errorf("cluster: node %d out of range [0,%d)", n, c.NumNodes())
	}
	c.breakerReset(n)
	if c.cfg.Durability {
		return c.recoverDurable(n)
	}
	rep := RecoveryReport{Node: n, Mode: "rebuild"}
	netBefore := c.tr.Stats()
	if _, err := c.rawDeliver(n, node.Ping{}); err != nil {
		return rep, fmt.Errorf("cluster: node %d not answering, restart it first: %w", n, err)
	}
	repairs := c.takeRepairs(n)
	drain := func(r repair) error {
		switch r.kind {
		case repairRedo:
			// Replay under the original sequence id: if the compensation
			// did land before the crash, the node's dedup absorbs it.
			if _, err := c.rawDeliver(n, node.Seq{ID: r.id, Req: r.req}); err != nil {
				return fmt.Errorf("cluster: replaying compensation %T at node %d: %w", r.req, n, err)
			}
		case repairInDoubt:
			resp, err := c.rawDeliver(n, node.SeqQuery{ID: r.id})
			if err != nil {
				return fmt.Errorf("cluster: resolving in-doubt %T at node %d: %w", r.req, n, err)
			}
			sq := resp.(node.SeqQueryResult)
			if !sq.Applied {
				return nil
			}
			inv := inverseOf(r.req, sq.Resp)
			if inv == nil {
				return nil // derived structure: the rebuild below repairs it
			}
			if _, err := c.rawCall(n, inv); err != nil {
				return fmt.Errorf("cluster: inverting in-doubt %T at node %d: %w", r.req, n, err)
			}
		}
		return nil
	}
	for i, r := range repairs {
		if err := drain(r); err != nil {
			// Put the unprocessed tail back so a rerun of Recover picks
			// up where this one stopped.
			for _, rest := range repairs[i:] {
				c.queueRepair(n, rest)
			}
			rep.Messages = c.tr.Stats().Messages - netBefore.Messages
			return rep, err
		}
		rep.RepairsReplayed++
	}
	c.dmu.Lock()
	delete(c.downNodes, n)
	c.needRebuild[n] = true
	stillDown := len(c.downNodes) > 0
	c.dmu.Unlock()
	if stillDown {
		// Derived rebuild needs every base fragment reachable; it runs
		// when the last node recovers.
		rep.Messages = c.tr.Stats().Messages - netBefore.Messages
		return rep, nil
	}
	// Resolve any migration the failure interrupted before rebuilding
	// derived state: until the migration is driven to a decision the base
	// tables can hold stale copies (source rows after a committed cutover,
	// destination residue after an aborted one), and a rebuild from them
	// would bake duplicate join rows into the view fragments at homes the
	// misplaced-row scrub cannot distinguish from real rows.
	if err := c.resumeMigrationsLocked(); err != nil {
		rep.Messages = c.tr.Stats().Messages - netBefore.Messages
		return rep, err
	}
	c.dmu.Lock()
	pending := make([]int, 0, len(c.needRebuild))
	for rn := range c.needRebuild {
		pending = append(pending, rn)
	}
	c.needRebuild = map[int]bool{}
	c.dmu.Unlock()
	sort.Ints(pending)
	for _, rn := range pending {
		pages, err := c.rebuildDerived(rn)
		rep.PageIOs += pages
		if err != nil {
			rep.Messages = c.tr.Stats().Messages - netBefore.Messages
			return rep, fmt.Errorf("cluster: rebuilding node %d: %w", rn, err)
		}
	}
	rep.Messages = c.tr.Stats().Messages - netBefore.Messages
	return rep, nil
}

// inverseOf builds the request that undoes an applied request, given the
// response the node cached for it. Nil means no exact inverse exists (the
// caller falls back to rebuilding). The construction lives in the node
// package (node.InverseOf): local abort resolution uses the same algebra
// against the node's own log records.
func inverseOf(req, resp any) any { return node.InverseOf(req, resp) }

// pageCount converts a row count to pages under the cluster's geometry.
func (c *Cluster) pageCount(rows int) int64 {
	if rows <= 0 {
		return 0
	}
	return int64((rows + c.cfg.PageRows - 1) / c.cfg.PageRows)
}

// rebuildDerived reconstructs every derived fragment homed at node n —
// auxiliary relations, view fragments and global-index fragments — from the
// base relations, reusing the DDL backfill machinery. Repair work is
// unmetered, like DDL, so the returned tally accounts its page traffic
// explicitly (base pages scanned + derived pages written): the cost the
// durability layer's log replay is measured against.
func (c *Cluster) rebuildDerived(n int) (int64, error) {
	var pages int64
	replace := func(name string, schema *types.Schema, clusterCol string, mine []types.Tuple) error {
		if _, err := c.rawCall(n, node.DropFragment{Name: name}); err != nil {
			return err
		}
		if _, err := c.rawCall(n, node.CreateFragment{
			Name: name, Schema: schema, ClusterCol: clusterCol, PageRows: c.cfg.PageRows,
		}); err != nil {
			return err
		}
		pages += c.pageCount(len(mine))
		if len(mine) == 0 {
			return nil
		}
		_, err := c.rawCall(n, node.Insert{Frag: name, Tuples: mine, Unmetered: true})
		return err
	}
	for _, table := range c.cat.Tables() {
		base, err := c.cat.Table(table)
		if err != nil {
			return pages, err
		}
		ars := c.cat.AuxRelsFor(table)
		gis := c.cat.GlobalIndexesFor(table)
		if len(ars) == 0 && len(gis) == 0 {
			continue
		}
		rows, err := c.gather(table)
		if err != nil {
			return pages, err
		}
		pages += c.pageCount(len(rows))
		for _, ar := range ars {
			projected, err := projectForAuxRel(base, ar, rows)
			if err != nil {
				return pages, err
			}
			buckets, err := c.part.Spread(ar.Schema, ar.PartitionCol, projected)
			if err != nil {
				return pages, err
			}
			if err := replace(ar.Name, ar.Schema, ar.PartitionCol, buckets[n]); err != nil {
				return pages, err
			}
		}
		for _, gi := range gis {
			giPages, err := c.rebuildGIFrag(gi.Name, gi.Col, gi.DistClustered, base, n)
			pages += giPages
			if err != nil {
				return pages, err
			}
		}
	}
	for _, vn := range c.cat.Views() {
		v, err := c.cat.View(vn)
		if err != nil {
			return pages, err
		}
		for _, table := range v.Tables {
			if ts, ok := c.st.Get(table); ok {
				pages += c.pageCount(int(ts.Rows))
			}
		}
		content, err := c.computeJoin(v)
		if err != nil {
			return pages, err
		}
		buckets, err := c.part.Spread(v.Schema, v.PartitionQualified(), content)
		if err != nil {
			return pages, err
		}
		if err := replace(v.Name, v.Schema, v.PartitionQualified(), buckets[n]); err != nil {
			return pages, err
		}
	}
	return pages, nil
}

// rebuildGIFrag reconstructs node n's fragment of one global index by
// scanning every base fragment for entries homed at n, returning the page
// tally (scans read + entries written).
func (c *Cluster) rebuildGIFrag(name, col string, distClustered bool, base *catalog.Table, n int) (int64, error) {
	var pages int64
	if _, err := c.rawCall(n, node.DropGlobalIndexFrag{Name: name}); err != nil {
		return pages, err
	}
	if _, err := c.rawCall(n, node.CreateGlobalIndex{Name: name, DistClustered: distClustered}); err != nil {
		return pages, err
	}
	ci := base.Schema.MustColIndex(col)
	for src := 0; src < c.NumNodes(); src++ {
		resp, err := c.rawDeliver(src, node.ScanWithRows{Frag: base.Name})
		if err != nil {
			return pages, err
		}
		rr := resp.(node.RowsResult)
		pages += c.pageCount(len(rr.Tuples))
		var vals []types.Value
		var gs []storage.GlobalRowID
		for i, tup := range rr.Tuples {
			v := tup[ci]
			if c.part.NodeFor(v) != n {
				continue
			}
			vals = append(vals, v)
			gs = append(gs, storage.GlobalRowID{Node: int32(src), Row: rr.Rows[i]})
		}
		if len(vals) == 0 {
			continue
		}
		pages += c.pageCount(len(vals))
		if _, err := c.rawCall(n, node.GIInsertBatch{GI: name, Vals: vals, Gs: gs}); err != nil {
			return pages, err
		}
	}
	return pages, nil
}
