package expr

import (
	"testing"

	"joinview/internal/types"
)

var testSchema = types.NewSchema(
	types.Column{Name: "k", Kind: types.KindInt},
	types.Column{Name: "bal", Kind: types.KindFloat},
	types.Column{Name: "name", Kind: types.KindString},
)

var testTuple = types.Tuple{types.Int(7), types.Float(10.5), types.String("alice")}

func evalBool(t *testing.T, e Expr) bool {
	t.Helper()
	v, err := e.Eval(testSchema, testTuple)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return Truthy(v)
}

func TestColAndConst(t *testing.T) {
	v, err := Col{"name"}.Eval(testSchema, testTuple)
	if err != nil || v.S != "alice" {
		t.Fatalf("Col eval = %v, %v", v, err)
	}
	if _, err := (Col{"zzz"}).Eval(testSchema, testTuple); err == nil {
		t.Error("unknown column must error")
	}
	c := Const{types.Int(5)}
	v, _ = c.Eval(nil, nil)
	if v.I != 5 {
		t.Error("const eval wrong")
	}
}

func TestCmpOps(t *testing.T) {
	cases := []struct {
		op   CmpOp
		r    types.Value
		want bool
	}{
		{EQ, types.Int(7), true},
		{EQ, types.Int(8), false},
		{NE, types.Int(8), true},
		{LT, types.Int(8), true},
		{LE, types.Int(7), true},
		{GT, types.Int(6), true},
		{GE, types.Int(7), true},
		{GT, types.Int(7), false},
	}
	for _, c := range cases {
		e := Cmp{c.op, Col{"k"}, Const{c.r}}
		if got := evalBool(t, e); got != c.want {
			t.Errorf("%s = %v, want %v", e, got, c.want)
		}
	}
}

func TestNullComparisonIsFalse(t *testing.T) {
	e := Cmp{EQ, Col{"k"}, Const{types.Null()}}
	v, err := e.Eval(testSchema, testTuple)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsNull() {
		t.Errorf("cmp with NULL should be NULL, got %v", v)
	}
	ok, err := Matches(e, testSchema, testTuple)
	if err != nil || ok {
		t.Errorf("Matches with NULL predicate = %v, %v; want false, nil", ok, err)
	}
}

func TestBooleanCombinators(t *testing.T) {
	tr := Cmp{EQ, Col{"k"}, Const{types.Int(7)}}
	fa := Cmp{EQ, Col{"k"}, Const{types.Int(0)}}
	if !evalBool(t, And{[]Expr{tr, tr}}) {
		t.Error("AND(true,true) failed")
	}
	if evalBool(t, And{[]Expr{tr, fa}}) {
		t.Error("AND(true,false) should be false")
	}
	if !evalBool(t, And{}) {
		t.Error("empty AND should be true")
	}
	if !evalBool(t, Or{[]Expr{fa, tr}}) {
		t.Error("OR(false,true) failed")
	}
	if evalBool(t, Or{}) {
		t.Error("empty OR should be false")
	}
	if !evalBool(t, Not{fa}) || evalBool(t, Not{tr}) {
		t.Error("NOT wrong")
	}
	if !evalBool(t, True) {
		t.Error("True should be true")
	}
}

func TestMatchesNilPredicate(t *testing.T) {
	ok, err := Matches(nil, testSchema, testTuple)
	if !ok || err != nil {
		t.Errorf("Matches(nil) = %v, %v", ok, err)
	}
}

func TestStrings(t *testing.T) {
	e := And{[]Expr{
		Cmp{EQ, Col{"k"}, Const{types.Int(7)}},
		Cmp{LT, Col{"name"}, Const{types.String("z")}},
	}}
	if got := e.String(); got != "k = 7 AND name < 'z'" {
		t.Errorf("String() = %q", got)
	}
	if (And{}).String() != "TRUE" || (Or{}).String() != "FALSE" {
		t.Error("empty combinator strings wrong")
	}
	if (Not{Col{"k"}}).String() != "NOT (k)" {
		t.Error("Not string wrong")
	}
	if (Or{[]Expr{Col{"k"}}}).String() != "(k)" {
		t.Error("Or string wrong")
	}
	for op, s := range map[CmpOp]string{EQ: "=", NE: "<>", LT: "<", LE: "<=", GT: ">", GE: ">="} {
		if op.String() != s {
			t.Errorf("op %d string = %q, want %q", op, op.String(), s)
		}
	}
	if (Const{types.String("x")}).String() != "'x'" {
		t.Error("string const should be quoted")
	}
}

func TestProjection(t *testing.T) {
	p := NewProjection([]string{"name", "k"})
	out, err := p.Apply(testSchema, testTuple)
	if err != nil {
		t.Fatal(err)
	}
	want := types.Tuple{types.String("alice"), types.Int(7)}
	if !out.Equal(want) {
		t.Errorf("Apply = %v, want %v", out, want)
	}
	os, err := p.OutputSchema(testSchema)
	if err != nil || os.Len() != 2 || os.Cols[0].Name != "name" {
		t.Errorf("OutputSchema = %v, %v", os, err)
	}
	// Identity projection passes through.
	var id *Projection
	if !id.Identity() {
		t.Error("nil projection should be identity")
	}
	out, err = id.Apply(testSchema, testTuple)
	if err != nil || !out.Equal(testTuple) {
		t.Errorf("identity Apply = %v, %v", out, err)
	}
	// Missing column errors.
	bad := NewProjection([]string{"zzz"})
	if _, err := bad.Apply(testSchema, testTuple); err == nil {
		t.Error("projection of missing column must error")
	}
	if _, err := bad.OutputSchema(testSchema); err == nil {
		t.Error("OutputSchema of missing column must error")
	}
}
