// Package expr provides scalar expressions over tuples: column references,
// constants, comparisons and boolean combinators. Expressions drive WHERE
// predicates, join conditions and the selection part of minimized auxiliary
// relations (AR = π(σ(R)) as in Quass et al., adopted by the paper §2.1.2).
package expr

import (
	"fmt"
	"strings"

	"joinview/internal/types"
)

// Expr is a scalar expression evaluated against a tuple with a known schema.
type Expr interface {
	// Eval computes the expression value for tuple t under schema s.
	Eval(s *types.Schema, t types.Tuple) (types.Value, error)
	// String renders the expression in SQL-ish syntax.
	String() string
}

// Col references a column by name.
type Col struct{ Name string }

// Eval implements Expr.
func (c Col) Eval(s *types.Schema, t types.Tuple) (types.Value, error) {
	i := s.ColIndex(c.Name)
	if i < 0 {
		return types.Value{}, fmt.Errorf("expr: unknown column %q (schema %v)", c.Name, s.Names())
	}
	return t[i], nil
}

func (c Col) String() string { return c.Name }

// Const is a literal value.
type Const struct{ V types.Value }

// Eval implements Expr.
func (c Const) Eval(*types.Schema, types.Tuple) (types.Value, error) { return c.V, nil }

func (c Const) String() string {
	if c.V.K == types.KindString {
		return "'" + c.V.S + "'"
	}
	return c.V.GoString()
}

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return "?"
}

// Cmp compares two sub-expressions. Comparisons involving NULL evaluate to
// NULL (which Filter treats as false).
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval implements Expr.
func (c Cmp) Eval(s *types.Schema, t types.Tuple) (types.Value, error) {
	l, err := c.L.Eval(s, t)
	if err != nil {
		return types.Value{}, err
	}
	r, err := c.R.Eval(s, t)
	if err != nil {
		return types.Value{}, err
	}
	if l.IsNull() || r.IsNull() {
		return types.Null(), nil
	}
	cmp := types.Compare(l, r)
	var ok bool
	switch c.Op {
	case EQ:
		ok = cmp == 0
	case NE:
		ok = cmp != 0
	case LT:
		ok = cmp < 0
	case LE:
		ok = cmp <= 0
	case GT:
		ok = cmp > 0
	case GE:
		ok = cmp >= 0
	}
	return boolVal(ok), nil
}

func (c Cmp) String() string { return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R) }

// And is a conjunction of predicates; the empty conjunction is TRUE.
type And struct{ Terms []Expr }

// Eval implements Expr.
func (a And) Eval(s *types.Schema, t types.Tuple) (types.Value, error) {
	for _, e := range a.Terms {
		v, err := e.Eval(s, t)
		if err != nil {
			return types.Value{}, err
		}
		if !Truthy(v) {
			return boolVal(false), nil
		}
	}
	return boolVal(true), nil
}

func (a And) String() string {
	if len(a.Terms) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(a.Terms))
	for i, e := range a.Terms {
		parts[i] = e.String()
	}
	return strings.Join(parts, " AND ")
}

// Or is a disjunction of predicates; the empty disjunction is FALSE.
type Or struct{ Terms []Expr }

// Eval implements Expr.
func (o Or) Eval(s *types.Schema, t types.Tuple) (types.Value, error) {
	for _, e := range o.Terms {
		v, err := e.Eval(s, t)
		if err != nil {
			return types.Value{}, err
		}
		if Truthy(v) {
			return boolVal(true), nil
		}
	}
	return boolVal(false), nil
}

func (o Or) String() string {
	if len(o.Terms) == 0 {
		return "FALSE"
	}
	parts := make([]string, len(o.Terms))
	for i, e := range o.Terms {
		parts[i] = "(" + e.String() + ")"
	}
	return strings.Join(parts, " OR ")
}

// Not negates a predicate.
type Not struct{ E Expr }

// Eval implements Expr.
func (n Not) Eval(s *types.Schema, t types.Tuple) (types.Value, error) {
	v, err := n.E.Eval(s, t)
	if err != nil {
		return types.Value{}, err
	}
	return boolVal(!Truthy(v)), nil
}

func (n Not) String() string { return "NOT (" + n.E.String() + ")" }

// True is the always-true predicate.
var True Expr = And{}

// Truthy reports whether a value counts as boolean true (non-zero int;
// NULL and everything else is false).
func Truthy(v types.Value) bool { return v.K == types.KindInt && v.I != 0 }

func boolVal(b bool) types.Value {
	if b {
		return types.Int(1)
	}
	return types.Int(0)
}

// Matches evaluates predicate p against a tuple and folds errors and NULL
// into false-with-error / false respectively.
func Matches(p Expr, s *types.Schema, t types.Tuple) (bool, error) {
	if p == nil {
		return true, nil
	}
	v, err := p.Eval(s, t)
	if err != nil {
		return false, err
	}
	return Truthy(v), nil
}

// Projection maps an input schema to an output tuple via named columns.
// It is deliberately restricted to column lists (no computed columns):
// that is all the paper's views and auxiliary relations need, and it keeps
// projected-AR maintenance trivially invertible.
type Projection struct {
	// Cols are input column names, in output order. Empty means identity.
	Cols []string
	idx  []int // resolved lazily against a schema
	src  *types.Schema
}

// NewProjection builds a projection of the named columns.
func NewProjection(cols []string) *Projection { return &Projection{Cols: cols} }

// Identity reports whether the projection passes tuples through unchanged.
func (p *Projection) Identity() bool { return p == nil || len(p.Cols) == 0 }

// OutputSchema returns the schema the projection yields for input schema s.
func (p *Projection) OutputSchema(s *types.Schema) (*types.Schema, error) {
	if p.Identity() {
		return s, nil
	}
	return s.Project(p.Cols)
}

// Apply projects tuple t (with schema s) onto the output columns.
func (p *Projection) Apply(s *types.Schema, t types.Tuple) (types.Tuple, error) {
	if p.Identity() {
		return t, nil
	}
	if p.src != s || p.idx == nil {
		idx := make([]int, len(p.Cols))
		for i, c := range p.Cols {
			j := s.ColIndex(c)
			if j < 0 {
				return nil, fmt.Errorf("expr: projection column %q not in schema %v", c, s.Names())
			}
			idx[i] = j
		}
		p.idx, p.src = idx, s
	}
	out := make(types.Tuple, len(p.idx))
	for i, j := range p.idx {
		out[i] = t[j]
	}
	return out, nil
}
