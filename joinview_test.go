package joinview

import (
	"fmt"
	"testing"
)

func openTestDB(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

func TestFacadeSQLRoundTrip(t *testing.T) {
	db := openTestDB(t, Options{Nodes: 4})
	_, err := db.ExecScript(`
		create table customer (custkey bigint, acctbal double) partition on custkey;
		create table orders (orderkey bigint, custkey bigint, totalprice double) partition on orderkey;
		create index ix_oc on orders (custkey);
		insert into customer values (1, 10.0), (2, 20.0);
		insert into orders values (100, 1, 5.5), (101, 2, 6.5), (102, 1, 7.5);
		create view jv1 as
			select c.custkey, c.acctbal, o.orderkey, o.totalprice
			from orders o, customer c
			where c.custkey = o.custkey
			partition on c.custkey using auxrel;
	`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := db.Exec(`select * from jv1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("jv1 = %v", r.Rows)
	}
	if _, err := db.Exec(`insert into customer values (3, 30.0)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`insert into orders values (103, 3, 9.0)`); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckViewConsistency("jv1"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeProgrammaticAPI(t *testing.T) {
	db := openTestDB(t, Options{Nodes: 2})
	a := &Table{
		Name: "a",
		Schema: NewSchema(
			Column{Name: "id", Kind: KindInt},
			Column{Name: "c", Kind: KindInt},
		),
		PartitionCol: "id",
	}
	b := &Table{
		Name: "b",
		Schema: NewSchema(
			Column{Name: "id", Kind: KindInt},
			Column{Name: "d", Kind: KindInt},
			Column{Name: "note", Kind: KindString},
		),
		PartitionCol: "id",
		Indexes:      []Index{{Name: "ix_b_d", Col: "d"}},
	}
	if err := db.CreateTable(a); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(b); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("b", []Tuple{
		{Int(1), Int(10), String("x")},
		{Int(2), Int(10), String("y")},
	}); err != nil {
		t.Fatal(err)
	}
	v := &View{
		Name:   "v",
		Tables: []string{"a", "b"},
		Joins:  []JoinPred{{Left: "a", LeftCol: "c", Right: "b", RightCol: "d"}},
		Out: []OutCol{
			{Table: "a", Col: "id"}, {Table: "b", Col: "note"},
		},
		PartitionTable: "a", PartitionCol: "id",
		Strategy: StrategyGlobalIndex,
	}
	if err := db.CreateView(v); err != nil {
		t.Fatal(err)
	}
	db.ResetMetrics()
	if err := db.Insert("a", []Tuple{{Int(100), Int(10)}}); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if m.TotalIOs() == 0 {
		t.Error("insert should cost I/O")
	}
	rows, err := db.ViewRows("v")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("view rows = %v", rows)
	}
	if err := db.CheckViewConsistency("v"); err != nil {
		t.Fatal(err)
	}
	// Predicate helpers drive deletes/updates.
	if _, err := db.Delete("b", Eq("id", Int(2))); err != nil {
		t.Fatal(err)
	}
	if n, err := db.Update("b", map[string]Value{"note": String("z")}, Gt("d", Int(5))); err != nil || n != 1 {
		t.Fatalf("update = %d, %v", n, err)
	}
	if err := db.CheckViewConsistency("v"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Delete("b", And(Eq("id", Int(1)), Lt("d", Int(100)))); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckViewConsistency("v"); err != nil {
		t.Fatal(err)
	}
	if db.NumNodes() != 2 {
		t.Error("NumNodes wrong")
	}
	if err := db.RefreshStats("b"); err != nil {
		t.Fatal(err)
	}
	if db.Cluster() == nil {
		t.Error("Cluster accessor nil")
	}
}

func TestFacadeAutoStrategy(t *testing.T) {
	db := openTestDB(t, Options{Nodes: 4})
	if _, err := db.ExecScript(`
		create table a (id bigint, c bigint) partition on id;
		create table b (id bigint, d bigint) partition on id;
		create index ix_b_d on b (d);
		insert into b values (1, 5), (2, 5), (3, 6);
		create view v as select a.id, b.id from a, b where a.c = b.d using auto;
	`); err != nil {
		t.Fatal(err)
	}
	strat, err := db.ResolveStrategy("v", "a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if strat != StrategyAuxRel {
		t.Errorf("auto strategy for 1-tuple update = %v, want auxrel", strat)
	}
	if _, err := db.ResolveStrategy("ghost", "a", 1); err == nil {
		t.Error("resolving for missing view should fail")
	}
	if _, err := db.Exec(`insert into a values (7, 5)`); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckViewConsistency("v"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeStorageAndCheckers(t *testing.T) {
	db := openTestDB(t, Options{Nodes: 2})
	if _, err := db.ExecScript(`
		create table a (id bigint, c bigint) partition on id;
		create table b (id bigint, d bigint) partition on id;
		create index ix_b_d on b (d);
		insert into b values (1, 5), (2, 5), (3, 6);
		create view v as select a.id, b.id from a, b where a.c = b.d using auto;
		insert into a values (7, 5), (8, 6);
	`); err != nil {
		t.Fatal(err)
	}
	rep, err := db.StorageReport()
	if err != nil {
		t.Fatal(err)
	}
	// Both a and b join on non-partitioning attributes, so auto creates
	// an AR and a GI for each: (2 + 2) rows for a, (3 + 3) for b.
	if rep.Overhead() != 10 {
		t.Errorf("overhead = %d, want 10", rep.Overhead())
	}
	if rep.OverheadValues() >= rep.Overhead()*3 {
		t.Errorf("GI entries should be narrower than AR rows: %d values", rep.OverheadValues())
	}
	if err := db.CheckAllStructures(); err != nil {
		t.Fatal(err)
	}
}

// A single-node cluster degenerates gracefully: every method works, all
// traffic is local.
func TestSingleNodeCluster(t *testing.T) {
	for _, strat := range []Strategy{StrategyNaive, StrategyAuxRel, StrategyGlobalIndex} {
		db := openTestDB(t, Options{Nodes: 1})
		if _, err := db.ExecScript(fmt.Sprintf(`
			create table a (id bigint, c bigint) partition on id;
			create table b (id bigint, d bigint) partition on id;
			create index ix_b_d on b (d);
			insert into b values (1, 5), (2, 5);
			create view v as select a.id, b.id from a, b where a.c = b.d using %s;
			insert into a values (7, 5);
			delete from b where id = 1;
		`, strat)); err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if err := db.CheckAllStructures(); err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		rows, _ := db.ViewRows("v")
		if len(rows) != 1 {
			t.Fatalf("%v: view rows = %d, want 1", strat, len(rows))
		}
	}
}

func TestFacadeDrops(t *testing.T) {
	db := openTestDB(t, Options{Nodes: 2})
	if _, err := db.ExecScript(`
		create table a (id bigint, c bigint) partition on id;
		create table b (id bigint, d bigint) partition on id;
		create index ix on b (d);
		insert into b values (1, 5);
		create view v as select a.id, b.id from a, b where a.c = b.d using auto;
	`); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("b"); err == nil {
		t.Error("dropping a viewed table should fail")
	}
	if err := db.DropView("v"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("b"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("a"); err != nil {
		t.Fatal(err)
	}
	rep, err := db.StorageReport()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 0 {
		t.Errorf("storage should be empty after drops: %+v", rep.Entries)
	}
	if err := db.DropAuxRel("ghost"); err == nil {
		t.Error("dropping a missing AR should fail")
	}
	if err := db.DropGlobalIndex("ghost"); err == nil {
		t.Error("dropping a missing GI should fail")
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Error("Open with zero nodes should fail")
	}
	db, err := Open(Options{Nodes: 1, ForceIndexJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	db, err = Open(Options{Nodes: 1, ForceSortMerge: true, UseChannels: true})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
}

func TestValueHelpers(t *testing.T) {
	if Int(3).I != 3 || Float(2.5).F != 2.5 || String("x").S != "x" || !Null().IsNull() {
		t.Error("value constructors wrong")
	}
	if Lit(Int(1)) == nil || Col("x") == nil || True == nil {
		t.Error("expr helpers nil")
	}
}
